package trace

import (
	"strings"
	"testing"
)

// TestRingWrapExact pins down the exact contents at and around the wrap
// boundary: filling a ring of size n with exactly n events must keep all of
// them in order, and one more event must evict exactly the oldest.
func TestRingWrapExact(t *testing.T) {
	const n = 4
	r := NewRing(n)
	for i := 0; i < n; i++ {
		r.Emit(Event{Cycle: uint64(i)})
	}
	ev := r.Events()
	if len(ev) != n {
		t.Fatalf("full ring holds %d events", len(ev))
	}
	for i := range ev {
		if ev[i].Cycle != uint64(i) {
			t.Fatalf("event %d cycle = %d (order broken at exact fill)", i, ev[i].Cycle)
		}
	}
	r.Emit(Event{Cycle: n})
	ev = r.Events()
	if len(ev) != n || ev[0].Cycle != 1 || ev[n-1].Cycle != n {
		t.Fatalf("after wrap: %+v", ev)
	}
}

// TestDivergenceEmptyStreams: two empty recorders agree; an empty recorder
// against a populated one reports the one-sided stream, not a panic or a
// false match.
func TestDivergenceEmptyStreams(t *testing.T) {
	if d := Divergence(NewRetireRecorder(), NewRetireRecorder()); d != "" {
		t.Fatalf("two empty recorders diverged: %s", d)
	}
	b := NewRetireRecorder()
	b.Emit(Event{Kind: KindRetire, PC: 1, Seq: 1, Result: 2})
	if d := Divergence(NewRetireRecorder(), b); !strings.Contains(d, "only in second") {
		t.Fatalf("one-sided stream not reported: %q", d)
	}
	// The mirror case: a stream present only in the first recorder shows up
	// as a length mismatch on that stream.
	if d := Divergence(b, NewRetireRecorder()); !strings.Contains(d, "lengths differ") {
		t.Fatalf("first-only stream not reported: %q", d)
	}
}

// TestDivergenceOutOfOrderSeq: retire order differs (reuse hits retire
// early), but per-warp program order (Seq) agrees — the streams must compare
// equal regardless of arrival order.
func TestDivergenceOutOfOrderSeq(t *testing.T) {
	a := NewRetireRecorder()
	a.Emit(Event{Kind: KindRetire, PC: 0, Seq: 1, Result: 10})
	a.Emit(Event{Kind: KindRetire, PC: 1, Seq: 2, Result: 20})
	a.Emit(Event{Kind: KindRetire, PC: 2, Seq: 3, Result: 30})
	b := NewRetireRecorder()
	b.Emit(Event{Kind: KindRetire, PC: 2, Seq: 3, Result: 30}) // bypass retired early
	b.Emit(Event{Kind: KindRetire, PC: 0, Seq: 1, Result: 10})
	b.Emit(Event{Kind: KindRetire, PC: 1, Seq: 2, Result: 20})
	if d := Divergence(a, b); d != "" {
		t.Fatalf("same program order reported divergent: %s", d)
	}
	// And a genuine mismatch is still found under reordering.
	c := NewRetireRecorder()
	c.Emit(Event{Kind: KindRetire, PC: 2, Seq: 3, Result: 31})
	c.Emit(Event{Kind: KindRetire, PC: 0, Seq: 1, Result: 10})
	c.Emit(Event{Kind: KindRetire, PC: 1, Seq: 2, Result: 20})
	if d := Divergence(a, c); !strings.Contains(d, "event 2") {
		t.Fatalf("mismatch not located in program order: %q", d)
	}
}

// TestDivergenceDeterministic is the regression test for the map-iteration
// nondeterminism: with several warps diverging at once, the reported first
// divergence must be the same on every call (the smallest key in
// launch/block/warp order).
func TestDivergenceDeterministic(t *testing.T) {
	mk := func(bump int) *RetireRecorder {
		r := NewRetireRecorder()
		for block := 0; block < 32; block++ {
			res := uint64(block)
			if bump >= 0 {
				res += uint64(bump)
			}
			r.Emit(Event{Kind: KindRetire, Block: block, PC: 1, Seq: 1, Result: res})
		}
		return r
	}
	a := mk(-1)
	b := mk(100) // every one of the 32 streams diverges
	want := Divergence(a, b)
	if want == "" {
		t.Fatal("expected a divergence")
	}
	if !strings.Contains(want, "block 0 ") {
		t.Fatalf("first divergence not the smallest key: %q", want)
	}
	for i := 0; i < 20; i++ {
		if got := Divergence(a, b); got != want {
			t.Fatalf("nondeterministic report:\n  first: %q\n  later: %q", want, got)
		}
	}
}
