package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriterLimitsOutput(t *testing.T) {
	var buf bytes.Buffer
	w := &Writer{W: &buf, Max: 2}
	for i := 0; i < 5; i++ {
		w.Emit(Event{Kind: KindIssue, Cycle: uint64(i), Op: "iadd"})
	}
	if w.Count() != 2 {
		t.Fatalf("printed %d, want 2", w.Count())
	}
	if got := strings.Count(buf.String(), "\n"); got != 2 {
		t.Fatalf("output lines = %d", got)
	}
}

func TestWriterFormatsRetire(t *testing.T) {
	var buf bytes.Buffer
	w := &Writer{W: &buf}
	w.Emit(Event{Kind: KindRetire, Cycle: 7, SM: 1, Warp: 2, PC: 3, Op: "fmul", Result: 0xABCD})
	out := buf.String()
	for _, want := range []string{"retire", "fmul", "000000000000abcd", "sm1", "w2"} {
		if !strings.Contains(out, want) {
			t.Errorf("output %q missing %q", out, want)
		}
	}
}

func TestRingKeepsLastN(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Emit(Event{Cycle: uint64(i)})
	}
	ev := r.Events()
	if len(ev) != 3 || ev[0].Cycle != 2 || ev[2].Cycle != 4 {
		t.Fatalf("ring contents wrong: %+v", ev)
	}
	empty := NewRing(0)
	empty.Emit(Event{})
	if len(empty.Events()) != 0 {
		t.Fatalf("zero-size ring must stay empty")
	}
}

func TestRetireRecorderFiltersAndOrders(t *testing.T) {
	r := NewRetireRecorder()
	r.Emit(Event{Kind: KindIssue, WarpInBlock: 1, PC: 5})
	r.Emit(Event{Kind: KindRetire, WarpInBlock: 1, PC: 5, Seq: 1, Result: 10})
	r.Emit(Event{Kind: KindRetire, WarpInBlock: 1, PC: 6, Seq: 2, Result: 11})
	s := r.Streams[[3]int{0, 0, 1}]
	if len(s) != 2 || s[0].PC != 5 || s[1].PC != 6 {
		t.Fatalf("stream wrong: %+v", s)
	}
}

func TestDivergence(t *testing.T) {
	mk := func(results ...uint64) *RetireRecorder {
		r := NewRetireRecorder()
		for i, res := range results {
			r.Emit(Event{Kind: KindRetire, SM: 0, Warp: 0, PC: i, Seq: uint64(i), Result: res})
		}
		return r
	}
	if d := Divergence(mk(1, 2, 3), mk(1, 2, 3)); d != "" {
		t.Fatalf("identical streams reported divergent: %s", d)
	}
	if d := Divergence(mk(1, 2, 3), mk(1, 9, 3)); !strings.Contains(d, "event 1") {
		t.Fatalf("divergence not located: %q", d)
	}
	if d := Divergence(mk(1, 2), mk(1, 2, 3)); !strings.Contains(d, "lengths differ") {
		t.Fatalf("length mismatch not reported: %q", d)
	}
	b := mk(1)
	b.Emit(Event{Kind: KindRetire, Block: 3, WarpInBlock: 7, PC: 0, Result: 5})
	if d := Divergence(mk(1), b); !strings.Contains(d, "only in second") {
		t.Fatalf("extra stream not reported: %q", d)
	}
}

func TestHashResultSensitivity(t *testing.T) {
	var a, b [32]uint32
	b[31] = 1
	if HashResult(&a) == HashResult(&b) {
		t.Fatalf("hash must depend on every lane")
	}
}
