package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// JSONSchema identifies the JSONL trace format; bump on any incompatible
// change to the event encoding.
const JSONSchema = "wir-trace/1"

// jsonHeader is the first line of a JSONL trace.
type jsonHeader struct {
	Schema string `json:"schema"`
}

// jsonEvent is the wire form of an Event. Result is hex text so the stream
// stays greppable and immune to JSON float round-tripping of large uint64s.
type jsonEvent struct {
	Kind        string `json:"kind"`
	Cycle       uint64 `json:"cycle"`
	SM          int    `json:"sm"`
	Warp        int    `json:"warp"`
	PC          int    `json:"pc"`
	Seq         uint64 `json:"seq"`
	Op          string `json:"op"`
	Launch      int    `json:"launch"`
	Block       int    `json:"block"`
	WarpInBlock int    `json:"wib"`
	Result      string `json:"result,omitempty"`
	// Kernel is optional (added after wir-trace/1 shipped, omitted when
	// empty) so old readers and old recorded streams stay compatible.
	Kernel string `json:"kernel,omitempty"`
}

func toJSONEvent(e Event) jsonEvent {
	je := jsonEvent{
		Kind: e.Kind.String(), Cycle: e.Cycle, SM: e.SM, Warp: e.Warp,
		PC: e.PC, Seq: e.Seq, Op: e.Op,
		Launch: e.Launch, Block: e.Block, WarpInBlock: e.WarpInBlock,
		Kernel: e.Kernel,
	}
	if e.Kind == KindRetire {
		je.Result = fmt.Sprintf("%016x", e.Result)
	}
	return je
}

func fromJSONEvent(je jsonEvent) (Event, error) {
	e := Event{
		Cycle: je.Cycle, SM: je.SM, Warp: je.Warp, PC: je.PC, Seq: je.Seq,
		Op: je.Op, Launch: je.Launch, Block: je.Block, WarpInBlock: je.WarpInBlock,
		Kernel: je.Kernel,
	}
	found := false
	for k, n := range kindNames {
		if n == je.Kind {
			e.Kind = Kind(k)
			found = true
			break
		}
	}
	if !found {
		return e, fmt.Errorf("trace: unknown event kind %q", je.Kind)
	}
	if je.Result != "" {
		r, err := strconv.ParseUint(je.Result, 16, 64)
		if err != nil {
			return e, fmt.Errorf("trace: bad result %q: %w", je.Result, err)
		}
		e.Result = r
	}
	return e, nil
}

// JSONWriter streams events as JSON lines behind a schema header, optionally
// filtered by kind, SM, and warp. The zero filter values pass everything.
type JSONWriter struct {
	enc *json.Encoder
	err error
	n   int

	// Filters. A nil Kinds passes all kinds; SM and Warp < 0 pass all.
	Kinds map[Kind]bool
	SM    int
	Warp  int
}

// NewJSONWriter returns a JSONL sink writing to w, with the schema header
// already emitted and no filtering.
func NewJSONWriter(w io.Writer) *JSONWriter {
	jw := &JSONWriter{enc: json.NewEncoder(w), SM: -1, Warp: -1}
	jw.err = jw.enc.Encode(jsonHeader{Schema: JSONSchema})
	return jw
}

// FilterKinds restricts the sink to the given event kinds.
func (jw *JSONWriter) FilterKinds(kinds ...Kind) *JSONWriter {
	jw.Kinds = make(map[Kind]bool, len(kinds))
	for _, k := range kinds {
		jw.Kinds[k] = true
	}
	return jw
}

// Emit implements Sink.
func (jw *JSONWriter) Emit(e Event) {
	if jw.err != nil {
		return
	}
	if jw.Kinds != nil && !jw.Kinds[e.Kind] {
		return
	}
	if jw.SM >= 0 && e.SM != jw.SM {
		return
	}
	if jw.Warp >= 0 && e.Warp != jw.Warp {
		return
	}
	jw.err = jw.enc.Encode(toJSONEvent(e))
	jw.n++
}

// Count returns how many events were written.
func (jw *JSONWriter) Count() int { return jw.n }

// Err returns the first write error, if any.
func (jw *JSONWriter) Err() error { return jw.err }

// ReadJSONL parses a JSONL trace written by JSONWriter, validating the schema
// header.
func ReadJSONL(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var hdr jsonHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if hdr.Schema != JSONSchema {
		return nil, fmt.Errorf("trace: unsupported schema %q (want %q)", hdr.Schema, JSONSchema)
	}
	var out []Event
	for {
		var je jsonEvent
		if err := dec.Decode(&je); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("trace: reading event %d: %w", len(out), err)
		}
		e, err := fromJSONEvent(je)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
}

// ReadRetireRecorder loads a JSONL trace and replays its retire events into a
// RetireRecorder, so a recorded run can stand in for a live one in
// differential comparison (wirdiff -ja/-jb).
func ReadRetireRecorder(r io.Reader) (*RetireRecorder, error) {
	events, err := ReadJSONL(r)
	if err != nil {
		return nil, err
	}
	rec := NewRetireRecorder()
	for _, e := range events {
		rec.Emit(e)
	}
	return rec, nil
}

// Multi fans events out to several sinks (e.g. a live text writer plus a
// JSONL file plus a retire recorder).
type Multi []Sink

// Emit implements Sink.
func (m Multi) Emit(e Event) {
	for _, s := range m {
		s.Emit(e)
	}
}
