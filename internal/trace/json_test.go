package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONWriterRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	jw := NewJSONWriter(&buf)
	events := []Event{
		{Kind: KindIssue, Cycle: 1, SM: 0, Warp: 2, PC: 3, Seq: 1, Op: "iadd", Launch: 1, Block: 4, WarpInBlock: 0, Kernel: "kmeans"},
		{Kind: KindRetire, Cycle: 9, SM: 0, Warp: 2, PC: 3, Seq: 1, Op: "iadd", Launch: 1, Block: 4, WarpInBlock: 0, Result: 0xDEADBEEF12345678},
	}
	for _, e := range events {
		jw.Emit(e)
	}
	if jw.Err() != nil || jw.Count() != 2 {
		t.Fatalf("err=%v count=%d", jw.Err(), jw.Count())
	}
	if !strings.Contains(buf.String(), `"schema":"wir-trace/1"`) {
		t.Fatalf("missing schema header: %s", buf.String())
	}
	if !strings.Contains(buf.String(), `"result":"deadbeef12345678"`) {
		t.Fatalf("result not hex-encoded: %s", buf.String())
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("%d events read", len(got))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d: got %+v, want %+v", i, got[i], events[i])
		}
	}
}

// TestJSONKernelFieldIsOptional checks the wir-trace/1 compatibility rule:
// the kernel field is additive. Events without it (as written by older
// producers) still parse, and events that omit it don't serialize the key.
func TestJSONKernelFieldIsOptional(t *testing.T) {
	// A stream exactly as an older writer would emit it: no kernel key.
	old := `{"schema":"wir-trace/1"}` + "\n" +
		`{"kind":"issue","cycle":1,"sm":0,"warp":2,"pc":3,"seq":1,"op":"iadd"}` + "\n"
	got, err := ReadJSONL(strings.NewReader(old))
	if err != nil {
		t.Fatalf("old-format line rejected: %v", err)
	}
	if len(got) != 1 || got[0].Kernel != "" {
		t.Fatalf("got %+v", got)
	}

	var buf bytes.Buffer
	jw := NewJSONWriter(&buf)
	jw.Emit(Event{Kind: KindIssue, Cycle: 1, SM: 0, Warp: 2, PC: 3, Seq: 1, Op: "iadd"})
	jw.Emit(Event{Kind: KindIssue, Cycle: 2, SM: 0, Warp: 2, PC: 4, Seq: 2, Op: "imul", Kernel: "kmeans"})
	lines := strings.SplitN(strings.TrimSpace(buf.String()), "\n", 2)
	if strings.Contains(lines[0], "kernel") {
		t.Fatalf("empty kernel must be omitted: %s", lines[0])
	}
	if !strings.Contains(lines[1], `"kernel":"kmeans"`) {
		t.Fatalf("kernel field missing: %s", lines[1])
	}
}

func TestJSONWriterFilters(t *testing.T) {
	var buf bytes.Buffer
	jw := NewJSONWriter(&buf).FilterKinds(KindRetire)
	jw.SM = 1
	jw.Warp = 3
	jw.Emit(Event{Kind: KindIssue, SM: 1, Warp: 3})  // wrong kind
	jw.Emit(Event{Kind: KindRetire, SM: 0, Warp: 3}) // wrong SM
	jw.Emit(Event{Kind: KindRetire, SM: 1, Warp: 2}) // wrong warp
	jw.Emit(Event{Kind: KindRetire, SM: 1, Warp: 3}) // passes
	if jw.Count() != 1 {
		t.Fatalf("filtered count = %d, want 1", jw.Count())
	}
}

func TestReadJSONLRejectsBadInput(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader(`{"schema":"wrong/1"}` + "\n")); err == nil {
		t.Fatal("wrong schema accepted")
	}
	if _, err := ReadJSONL(strings.NewReader("")); err == nil {
		t.Fatal("empty stream accepted")
	}
	bad := `{"schema":"wir-trace/1"}` + "\n" + `{"kind":"flarp"}` + "\n"
	if _, err := ReadJSONL(strings.NewReader(bad)); err == nil {
		t.Fatal("unknown kind accepted")
	}
	bad = `{"schema":"wir-trace/1"}` + "\n" + `{"kind":"retire","result":"zzzz"}` + "\n"
	if _, err := ReadJSONL(strings.NewReader(bad)); err == nil {
		t.Fatal("malformed result accepted")
	}
}

func TestReadRetireRecorder(t *testing.T) {
	var buf bytes.Buffer
	jw := NewJSONWriter(&buf)
	// Include non-retire noise: the recorder must keep only retires.
	jw.Emit(Event{Kind: KindIssue, Launch: 1, Block: 0, WarpInBlock: 0, Seq: 1})
	jw.Emit(Event{Kind: KindRetire, Launch: 1, Block: 0, WarpInBlock: 0, PC: 7, Seq: 1, Result: 5})
	jw.Emit(Event{Kind: KindRetire, Launch: 1, Block: 2, WarpInBlock: 1, PC: 8, Seq: 1, Result: 6})
	rec, err := ReadRetireRecorder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Streams) != 2 {
		t.Fatalf("%d streams", len(rec.Streams))
	}
	s := rec.Streams[[3]int{1, 0, 0}]
	if len(s) != 1 || s[0].PC != 7 || s[0].Result != 5 {
		t.Fatalf("stream wrong: %+v", s)
	}
	// A recorder loaded from disk must compare clean against a live recorder
	// of the same run.
	live := NewRetireRecorder()
	live.Emit(Event{Kind: KindRetire, Launch: 1, Block: 0, WarpInBlock: 0, PC: 7, Seq: 1, Result: 5})
	live.Emit(Event{Kind: KindRetire, Launch: 1, Block: 2, WarpInBlock: 1, PC: 8, Seq: 1, Result: 6})
	if d := Divergence(rec, live); d != "" {
		t.Fatalf("recorded vs live diverged: %s", d)
	}
}

func TestMultiFansOut(t *testing.T) {
	r1, r2 := NewRing(4), NewRing(4)
	m := Multi{r1, r2}
	m.Emit(Event{Cycle: 1})
	m.Emit(Event{Cycle: 2})
	if len(r1.Events()) != 2 || len(r2.Events()) != 2 {
		t.Fatalf("fan-out missed a sink: %d / %d", len(r1.Events()), len(r2.Events()))
	}
}
