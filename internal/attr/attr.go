// Package attr attributes simulator activity to static instructions: every
// counter the aggregate stats layer keeps per run, this layer keeps per
// (kernel, SM, PC) — issues, reuse-buffer hits and misses, bypasses, VSB
// false positives, dummy MOVs, bank retries, issue-to-retire cycles, an
// energy estimate, and the issue-stall cycles blamed on the blocking
// producer's PC via the metrics stall taxonomy. The SM and core hot paths
// feed it the same way they feed internal/metrics: nil-safely, behind a
// single pointer test, so uninstrumented runs pay nothing.
//
// The collected tables export three ways: a pprof profile (pprof.go) whose
// functions are kernels and whose lines are PCs, a ranked hotspot table
// (Hotspots/WriteHotspots, surfaced by `wirsim -hotspots`, `wirprof
// -hotspots`, and the `-stats json` report), and direct access for tests
// that reconcile per-PC sums against the aggregate counters.
package attr

import (
	"fmt"
	"io"
	"sort"

	"github.com/wirsim/wir/internal/energy"
	"github.com/wirsim/wir/internal/kasm"
	"github.com/wirsim/wir/internal/metrics"
)

// PCStats accumulates the activity of one static instruction on one SM.
// The simulator is single-goroutine (SMs tick sequentially), so plain
// fields suffice. The Inc* methods are nil-safe so the core engine can call
// them straight off a Flight whose attribution record may be absent.
type PCStats struct {
	Issued      uint64 // warp instructions issued from this PC
	Bypassed    uint64 // retired via reuse bypass (no backend execution)
	ReuseHits   uint64 // reuse-buffer result hits (incl. pending-retry hits)
	ReuseMisses uint64 // reuse-buffer misses
	VSBFalsePos uint64 // VSB hash hits refuted by the verify-read
	DummyMovs   uint64 // divergence dummy MOVs injected on behalf of this PC
	BankRetries uint64 // register-bank conflict retries (operand, verify, write, dummy)
	Cycles      uint64 // summed issue-to-retire latency of flights from this PC
	EnergyPJ    float64
	// Stalls are scheduler-slot stall cycles blamed on this PC as the
	// blocking producer (the oldest in-flight instruction of the stalled
	// warp).
	Stalls metrics.StallCounts
}

// IncReuseHit records a reuse-buffer result hit. Safe on a nil receiver.
func (p *PCStats) IncReuseHit() {
	if p != nil {
		p.ReuseHits++
	}
}

// IncReuseMiss records a reuse-buffer miss. Safe on a nil receiver.
func (p *PCStats) IncReuseMiss() {
	if p != nil {
		p.ReuseMisses++
	}
}

// IncVSBFalsePos records a VSB verify-read false positive. Safe on a nil
// receiver.
func (p *PCStats) IncVSBFalsePos() {
	if p != nil {
		p.VSBFalsePos++
	}
}

// AddStall blames one scheduler-slot stall cycle on this PC. Safe on a nil
// receiver.
func (p *PCStats) AddStall(r metrics.StallReason) {
	if p != nil {
		p.Stalls.Inc(r)
	}
}

func (p *PCStats) add(o *PCStats) {
	p.Issued += o.Issued
	p.Bypassed += o.Bypassed
	p.ReuseHits += o.ReuseHits
	p.ReuseMisses += o.ReuseMisses
	p.VSBFalsePos += o.VSBFalsePos
	p.DummyMovs += o.DummyMovs
	p.BankRetries += o.BankRetries
	p.Cycles += o.Cycles
	p.EnergyPJ += o.EnergyPJ
	p.Stalls.Add(&o.Stalls)
}

// active reports whether any activity was recorded at this PC.
func (p *PCStats) active() bool {
	return p.Issued != 0 || p.DummyMovs != 0 || p.BankRetries != 0 ||
		p.Cycles != 0 || p.Stalls.Total() != 0
}

// Table holds the per-PC records of one kernel on one SM. PCs is indexed by
// program counter and sized to the kernel's code, so the SM resolves a
// record with one bounds-checked index at issue and carries the pointer on
// the Flight for the rest of the pipeline.
type Table struct {
	Kernel *kasm.Kernel
	SM     int
	PCs    []PCStats
}

// At returns the record for pc.
func (t *Table) At(pc int) *PCStats { return &t.PCs[pc] }

type tableKey struct {
	kernel *kasm.Kernel
	sm     int
}

// Collector owns every attribution table of a run plus the energy
// coefficients the SMs use for the per-PC estimate. Attach it with
// GPU.SetAttribution before the first Run so stall blame covers the whole
// run.
type Collector struct {
	// Cost prices the per-PC energy estimate. NewCollector seeds it with the
	// default 45nm set; override before running to match a custom model.
	Cost energy.Coefficients

	tables []*Table
	index  map[tableKey]*Table

	// unattributed collects stall cycles with no blamable producer PC:
	// empty/barrier/pipeline-full slots, and scoreboard hazards held by work
	// outside the flight list. Together with the per-PC stall tables it
	// reconstructs the aggregate StallReport exactly.
	unattributed metrics.StallCounts
}

// NewCollector returns an empty collector priced with the default 45nm
// energy coefficients.
func NewCollector() *Collector {
	return &Collector{
		Cost:  energy.Default45nm(),
		index: make(map[tableKey]*Table),
	}
}

// Table returns (creating on first use) the table for kernel k on SM sm.
func (c *Collector) Table(k *kasm.Kernel, sm int) *Table {
	key := tableKey{k, sm}
	if t, ok := c.index[key]; ok {
		return t
	}
	t := &Table{Kernel: k, SM: sm, PCs: make([]PCStats, len(k.Code))}
	c.index[key] = t
	c.tables = append(c.tables, t)
	return t
}

// Tables returns every table in creation order.
func (c *Collector) Tables() []*Table { return c.tables }

// NoteUnattributedStall charges a stall cycle that has no producer PC.
func (c *Collector) NoteUnattributedStall(r metrics.StallReason) { c.unattributed.Inc(r) }

// Unattributed returns the stall cycles not blamed on any PC.
func (c *Collector) Unattributed() metrics.StallCounts { return c.unattributed }

// Totals sums every per-PC record across all tables. The result's counters
// reconcile exactly with the matching stats.Sim fields of the run
// (TestAttributionReconciles).
func (c *Collector) Totals() PCStats {
	var out PCStats
	for _, t := range c.tables {
		for i := range t.PCs {
			out.add(&t.PCs[i])
		}
	}
	return out
}

// StallTotals sums per-PC stall blame plus the unattributed remainder; it
// equals the aggregate StallReport's per-reason counts exactly.
func (c *Collector) StallTotals() metrics.StallCounts {
	out := c.unattributed
	for _, t := range c.tables {
		for i := range t.PCs {
			out.Add(&t.PCs[i].Stalls)
		}
	}
	return out
}

// Hotspots merges the tables across SMs by (kernel, PC) and returns the top
// n records ranked by attributed cycles (stall blame breaking ties), each
// annotated with the instruction's disassembly. n <= 0 returns all.
func (c *Collector) Hotspots(n int) []metrics.Hotspot {
	type key struct {
		kernel string
		pc     int
	}
	merged := make(map[key]*metrics.Hotspot)
	var order []key
	for _, t := range c.tables {
		for pc := range t.PCs {
			r := &t.PCs[pc]
			if !r.active() {
				continue
			}
			k := key{t.Kernel.Name, pc}
			h, ok := merged[k]
			if !ok {
				h = &metrics.Hotspot{Kernel: t.Kernel.Name, PC: pc, Op: t.Kernel.Disasm(pc)}
				merged[k] = h
				order = append(order, k)
			}
			h.Issued += r.Issued
			h.Bypassed += r.Bypassed
			h.ReuseHits += r.ReuseHits
			h.ReuseMisses += r.ReuseMisses
			h.VSBFalsePos += r.VSBFalsePos
			h.DummyMovs += r.DummyMovs
			h.BankRetries += r.BankRetries
			h.Cycles += r.Cycles
			h.EnergyPJ += r.EnergyPJ
			h.StallCycles += r.Stalls.Total()
		}
	}
	out := make([]metrics.Hotspot, 0, len(order))
	for _, k := range order {
		out = append(out, *merged[k])
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.Cycles != b.Cycles {
			return a.Cycles > b.Cycles
		}
		if a.StallCycles != b.StallCycles {
			return a.StallCycles > b.StallCycles
		}
		if a.Kernel != b.Kernel {
			return a.Kernel < b.Kernel
		}
		return a.PC < b.PC
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// WriteHotspots renders a hotspot slice as an aligned text table.
func WriteHotspots(w io.Writer, hs []metrics.Hotspot) error {
	if _, err := fmt.Fprintf(w, "%-14s %4s  %-28s %10s %9s %9s %8s %8s %10s %12s\n",
		"kernel", "pc", "instruction", "cycles", "stalls", "issued", "bypass", "retries", "dummies", "energy(pJ)"); err != nil {
		return err
	}
	for _, h := range hs {
		op := h.Op
		if len(op) > 28 {
			op = op[:25] + "..."
		}
		if _, err := fmt.Fprintf(w, "%-14s %4d  %-28s %10d %9d %9d %8d %8d %10d %12.0f\n",
			h.Kernel, h.PC, op, h.Cycles, h.StallCycles, h.Issued, h.Bypassed,
			h.BankRetries, h.DummyMovs, h.EnergyPJ); err != nil {
			return err
		}
	}
	return nil
}
