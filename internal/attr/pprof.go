package attr

import (
	"fmt"
	"io"
	"sort"

	"github.com/wirsim/wir/internal/pprofenc"
)

// Profile renders the collected attribution as a pprof profile readable by
// `go tool pprof` (and its -http flamegraph view): each kernel becomes a
// function in a synthetic source file "<kernel>.kasm" whose line numbers are
// PC+1, and each PC becomes a leaf function named with its disassembly. One
// sample is emitted per (kernel, SM, PC) with the SM carried as a numeric
// label, so `pprof -tagfocus` can isolate one SM. Sample values are
// [simulated cycles, energy pJ, issued count]; cycles is the default view.
// cycles is the run length in core cycles, reported as the profile duration
// at the 1 cycle = 1µs convention the Perfetto export also uses.
func (c *Collector) Profile(cycles uint64) *pprofenc.Profile {
	p := &pprofenc.Profile{
		SampleType: []pprofenc.ValueType{
			{Type: "cycles", Unit: "cycles"},
			{Type: "energy", Unit: "picojoules"},
			{Type: "issued", Unit: "count"},
		},
		PeriodType:        pprofenc.ValueType{Type: "cycles", Unit: "cycles"},
		Period:            1,
		DurationNanos:     int64(cycles) * 1000,
		DefaultSampleType: "cycles",
		Comments:          []string{"wirsim per-PC attribution profile"},
	}
	const memStart, memLimit = 0x1000, 0x10000000
	p.Mappings = []pprofenc.Mapping{{
		ID: 1, MemoryStart: memStart, MemoryLimit: memLimit,
		Filename: "[wirsim]", BuildID: "wir-attr",
	}}

	var (
		nextFn  uint64
		nextLoc uint64
		// One function+location per kernel (the flamegraph root frame) and
		// per (kernel, pc) leaf, shared across SMs.
		kernelFn  = map[string]uint64{}
		kernelLoc = map[string]uint64{}
		pcLoc     = map[string]map[int]uint64{}
	)
	addFn := func(f pprofenc.Function) uint64 {
		nextFn++
		f.ID = nextFn
		p.Functions = append(p.Functions, f)
		return nextFn
	}
	addLoc := func(fn uint64, line int64) uint64 {
		nextLoc++
		p.Locations = append(p.Locations, pprofenc.Location{
			ID: nextLoc, MappingID: 1, Address: memStart + nextLoc*16,
			Lines: []pprofenc.Line{{FunctionID: fn, Line: line}},
		})
		return nextLoc
	}

	// Walk tables in a deterministic order: kernel name, then SM.
	tables := append([]*Table(nil), c.tables...)
	sort.Slice(tables, func(i, j int) bool {
		if tables[i].Kernel.Name != tables[j].Kernel.Name {
			return tables[i].Kernel.Name < tables[j].Kernel.Name
		}
		return tables[i].SM < tables[j].SM
	})
	for _, t := range tables {
		name := t.Kernel.Name
		file := name + ".kasm"
		if _, ok := kernelFn[name]; !ok {
			fn := addFn(pprofenc.Function{Name: name, SystemName: name, Filename: file, StartLine: 1})
			kernelFn[name] = fn
			kernelLoc[name] = addLoc(fn, 1)
			pcLoc[name] = map[int]uint64{}
		}
		for pc := range t.PCs {
			r := &t.PCs[pc]
			if !r.active() {
				continue
			}
			loc, ok := pcLoc[name][pc]
			if !ok {
				sys := fmt.Sprintf("%s:%d", name, pc)
				fn := addFn(pprofenc.Function{
					Name:       sys + " " + t.Kernel.Disasm(pc),
					SystemName: sys,
					Filename:   file,
					StartLine:  int64(pc) + 1,
				})
				loc = addLoc(fn, int64(pc)+1)
				pcLoc[name][pc] = loc
			}
			p.Samples = append(p.Samples, pprofenc.Sample{
				LocationIDs: []uint64{loc, kernelLoc[name]},
				Values:      []int64{int64(r.Cycles), int64(r.EnergyPJ + 0.5), int64(r.Issued)},
				Labels:      []pprofenc.Label{{Key: "sm", Num: int64(t.SM), NumUnit: "id"}},
			})
		}
	}
	return p
}

// WriteProfile writes the gzip'd profile for a run of the given cycle count.
func (c *Collector) WriteProfile(w io.Writer, cycles uint64) error {
	return c.Profile(cycles).WriteGzip(w)
}
