// Sobel: the paper's motivating example (Figure 3). A 3x3 Sobel filter runs
// over an image with flat regions; identical pixel neighborhoods make whole
// gradient computations repeat, which the WIR machinery detects through
// shared physical registers. The example prints per-model energy so the
// effect of each incremental optimization is visible.
package main

import (
	"fmt"
	"log"

	wir "github.com/wirsim/wir"
)

const (
	width  = 256
	height = 128
)

// buildSobel assembles one thread per pixel computing
// fScale * (|Gx| + |Gy|) from the texture-space image.
func buildSobel(out uint32) *wir.Kernel {
	b := wir.NewKernelBuilder("sobel")
	gidx := b.R()
	tid := b.R()
	bid := b.R()
	bdim := b.R()
	b.S2R(tid, wir.Tid)
	b.S2R(bid, wir.CtaidX)
	b.S2R(bdim, wir.NtidX)
	b.IMad(gidx, bid, bdim, tid)
	x := b.R()
	y := b.R()
	b.AndI(x, gidx, width-1)
	b.ShrI(y, gidx, 8)

	xx := b.R()
	yy := b.R()
	sc := b.R()
	addr := b.R()
	pix := make([]wir.Reg, 9)
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			i := (dy+1)*3 + (dx + 1)
			pix[i] = b.R()
			b.IAddI(xx, x, int32(dx))
			b.MovI(sc, 0)
			b.IMax(xx, xx, sc)
			b.MovI(sc, width-1)
			b.IMin(xx, xx, sc)
			b.IAddI(yy, y, int32(dy))
			b.MovI(sc, 0)
			b.IMax(yy, yy, sc)
			b.MovI(sc, height-1)
			b.IMin(yy, yy, sc)
			b.ShlI(addr, yy, 8)
			b.IAdd(addr, addr, xx)
			b.ShlI(addr, addr, 2)
			b.Ld(pix[i], wir.Tex, addr, 0)
		}
	}
	two := b.R()
	horz := b.R()
	vert := b.R()
	t := b.R()
	b.MovF(two, 2)
	b.FAdd(horz, pix[2], pix[8])
	b.FFma(horz, two, pix[5], horz)
	b.FSub(horz, horz, pix[0])
	b.FFma(t, two, pix[3], pix[6])
	b.FSub(horz, horz, t)
	b.FAdd(vert, pix[0], pix[2])
	b.FFma(vert, two, pix[1], vert)
	b.FSub(vert, vert, pix[6])
	b.FFma(t, two, pix[7], pix[8])
	b.FSub(vert, vert, t)
	b.FAbs(horz, horz)
	b.FAbs(vert, vert)
	b.FAdd(t, horz, vert)
	b.FMulI(t, t, 0.25)
	b.ShlI(addr, gidx, 2)
	b.IAddI(addr, addr, int32(out))
	b.St(wir.Global, addr, t, 0)
	b.Exit()
	return b.MustBuild()
}

// flatImage builds a piecewise-constant test image (quantized patches).
func flatImage() []uint32 {
	img := make([]uint32, width*height)
	levels := []float32{0, 0.2, 0.4, 0.6, 0.8, 1}
	for py := 0; py < height; py += 16 {
		for px := 0; px < width; px += 16 {
			v := wir.F32Bits(levels[(px/16+py/16*3)%len(levels)])
			for y := py; y < py+16; y++ {
				for x := px; x < px+16; x++ {
					img[y*width+x] = v
				}
			}
		}
	}
	return img
}

func main() {
	models := []wir.Model{wir.Base, wir.R, wir.RL, wir.RLP, wir.RLPV, wir.Affine, wir.AffineRLPV}
	var baseEnergy float64
	fmt.Printf("%-12s %10s %10s %10s %12s\n", "model", "cycles", "reused", "SM uJ", "rel energy")
	for _, m := range models {
		cfg := wir.DefaultConfig(m)
		g, err := wir.NewGPU(cfg)
		if err != nil {
			log.Fatal(err)
		}
		ms := g.Mem()
		ms.SetTex(flatImage())
		out := ms.Alloc(width * height)
		cycles, err := g.Run(&wir.Launch{Kernel: buildSobel(out), GridX: width * height / 128, DimX: 128})
		if err != nil {
			log.Fatal(err)
		}
		st := g.Stats()
		eb := wir.Energy(cfg, &st)
		if m == wir.Base {
			baseEnergy = eb.SM()
		}
		fmt.Printf("%-12v %10d %9.1f%% %10.2f %11.1f%%\n",
			m, cycles, 100*st.BypassRate(), eb.SM()/1e6, 100*eb.SM()/baseEnergy)
	}
}
