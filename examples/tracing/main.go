// Tracing: attach a pipeline tracer to the simulator and watch individual
// warp instructions get issued, bypass the backend through the reuse buffer,
// dispatch to functional units, and retire. The same hook drives the wirdiff
// differential checker. The second half attaches the telemetry layer — an
// interval sampler and the instrument histograms — and prints the IPC time
// series and the issue-stall attribution for the same kernel.
package main

import (
	"fmt"
	"log"
	"os"

	wir "github.com/wirsim/wir"
)

func buildKernel(in, out uint32) *wir.Kernel {
	b := wir.NewKernelBuilder("traced")
	gidx := b.R()
	tid := b.R()
	bid := b.R()
	bdim := b.R()
	b.S2R(tid, wir.Tid)
	b.S2R(bid, wir.CtaidX)
	b.S2R(bdim, wir.NtidX)
	b.IMad(gidx, bid, bdim, tid)
	addr := b.R()
	v := b.R()
	b.ShlI(addr, gidx, 2)
	b.IAddI(addr, addr, int32(in))
	b.Ld(v, wir.Global, addr, 0)
	b.FMulI(v, v, 2.5)
	b.FAddI(v, v, 1)
	b.ShlI(addr, gidx, 2)
	b.IAddI(addr, addr, int32(out))
	b.St(wir.Global, addr, v, 0)
	b.Exit()
	return b.MustBuild()
}

func main() {
	cfg := wir.DefaultConfig(wir.RLPV)
	cfg.NumSMs = 1
	g, err := wir.NewGPU(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ms := g.Mem()
	const n = 512
	in := ms.Alloc(n)
	out := ms.Alloc(n)
	for i := 0; i < n; i++ {
		ms.StoreGlobal(in+uint32(i)*4, wir.F32Bits(float32(i%4))) // 4 distinct values
	}

	// Stream the first events as text...
	fmt.Println("first 24 pipeline events:")
	g.SetTracer(&wir.TraceWriter{W: os.Stdout, Max: 24})
	// ...while also keeping a ring of the most recent ones.
	ring := wir.NewTraceRing(8)

	if _, err := g.Run(&wir.Launch{Kernel: buildKernel(in, out), GridX: n / 128, DimX: 128}); err != nil {
		log.Fatal(err)
	}

	// Re-run with the ring attached to show post-mortem inspection.
	g2, err := wir.NewGPU(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ms2 := g2.Mem()
	in2 := ms2.Alloc(n)
	out2 := ms2.Alloc(n)
	for i := 0; i < n; i++ {
		ms2.StoreGlobal(in2+uint32(i)*4, wir.F32Bits(float32(i%4)))
	}
	g2.SetTracer(ring)
	if _, err := g2.Run(&wir.Launch{Kernel: buildKernel(in2, out2), GridX: n / 128, DimX: 128}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nlast events before completion (from the ring buffer):")
	for _, e := range ring.Events() {
		fmt.Printf("  cycle %5d  %-8v %s (warp %d, pc %d)\n", e.Cycle, e.Kind, e.Op, e.Warp, e.PC)
	}

	st := g2.Stats()
	fmt.Printf("\n%.1f%% of instructions bypassed the backend via reuse\n", 100*st.BypassRate())

	// Third run: full telemetry. Instruments feed histograms from the hot
	// paths; the sampler snapshots the counters every 200 cycles; the stall
	// attribution names where every non-issuing scheduler cycle went.
	g3, err := wir.NewGPU(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ms3 := g3.Mem()
	in3 := ms3.Alloc(n)
	out3 := ms3.Alloc(n)
	for i := 0; i < n; i++ {
		ms3.StoreGlobal(in3+uint32(i)*4, wir.F32Bits(float32(i%4)))
	}
	reg := wir.NewMetricsRegistry()
	ins := wir.NewInstruments(reg)
	g3.SetInstruments(ins)
	sampler := wir.NewSampler(200)
	sampler.Registry = reg
	g3.SetSampler(sampler)
	if _, err := g3.Run(&wir.Launch{Kernel: buildKernel(in3, out3), GridX: n / 128, DimX: 128}); err != nil {
		log.Fatal(err)
	}
	g3.FlushSampler()

	fmt.Println("\nIPC and bypass rate over time (200-cycle intervals):")
	for _, s := range sampler.Samples() {
		fmt.Printf("  [%5d, %5d]  ipc %.2f  bypass %4.1f%%  rf traffic %.2f/cycle\n",
			s.Start, s.End, s.IPC, 100*s.BypassRate, s.RFTraffic)
	}

	sr := g3.StallReport()
	fmt.Printf("\nissue-slot accounting: %d slot cycles, %d issued (%.1f%%)\n",
		sr.SchedSlotCycles, sr.IssueCycles,
		100*float64(sr.IssueCycles)/float64(sr.SchedSlotCycles))
	fmt.Println("where the stalled cycles went:")
	for reason, frac := range sr.Fractions() {
		if frac > 0.005 {
			fmt.Printf("  %-14s %5.1f%%\n", reason, 100*frac)
		}
	}

	fmt.Printf("\nissue-to-retire latency: mean %.1f cycles, p50 <= %d, p99 <= %d\n",
		ins.IssueLatency.Mean(), ins.IssueLatency.Quantile(0.5), ins.IssueLatency.Quantile(0.99))
	fmt.Printf("reuse distance (buffer accesses between insert and hit): mean %.1f\n",
		ins.ReuseDistance.Mean())
}
