// Tracing: attach a pipeline tracer to the simulator and watch individual
// warp instructions get issued, bypass the backend through the reuse buffer,
// dispatch to functional units, and retire. The same hook drives the wirdiff
// differential checker.
package main

import (
	"fmt"
	"log"
	"os"

	wir "github.com/wirsim/wir"
)

func buildKernel(in, out uint32) *wir.Kernel {
	b := wir.NewKernelBuilder("traced")
	gidx := b.R()
	tid := b.R()
	bid := b.R()
	bdim := b.R()
	b.S2R(tid, wir.Tid)
	b.S2R(bid, wir.CtaidX)
	b.S2R(bdim, wir.NtidX)
	b.IMad(gidx, bid, bdim, tid)
	addr := b.R()
	v := b.R()
	b.ShlI(addr, gidx, 2)
	b.IAddI(addr, addr, int32(in))
	b.Ld(v, wir.Global, addr, 0)
	b.FMulI(v, v, 2.5)
	b.FAddI(v, v, 1)
	b.ShlI(addr, gidx, 2)
	b.IAddI(addr, addr, int32(out))
	b.St(wir.Global, addr, v, 0)
	b.Exit()
	return b.MustBuild()
}

func main() {
	cfg := wir.DefaultConfig(wir.RLPV)
	cfg.NumSMs = 1
	g, err := wir.NewGPU(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ms := g.Mem()
	const n = 512
	in := ms.Alloc(n)
	out := ms.Alloc(n)
	for i := 0; i < n; i++ {
		ms.StoreGlobal(in+uint32(i)*4, wir.F32Bits(float32(i%4))) // 4 distinct values
	}

	// Stream the first events as text...
	fmt.Println("first 24 pipeline events:")
	g.SetTracer(&wir.TraceWriter{W: os.Stdout, Max: 24})
	// ...while also keeping a ring of the most recent ones.
	ring := wir.NewTraceRing(8)

	if _, err := g.Run(&wir.Launch{Kernel: buildKernel(in, out), GridX: n / 128, DimX: 128}); err != nil {
		log.Fatal(err)
	}

	// Re-run with the ring attached to show post-mortem inspection.
	g2, err := wir.NewGPU(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ms2 := g2.Mem()
	in2 := ms2.Alloc(n)
	out2 := ms2.Alloc(n)
	for i := 0; i < n; i++ {
		ms2.StoreGlobal(in2+uint32(i)*4, wir.F32Bits(float32(i%4)))
	}
	g2.SetTracer(ring)
	if _, err := g2.Run(&wir.Launch{Kernel: buildKernel(in2, out2), GridX: n / 128, DimX: 128}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nlast events before completion (from the ring buffer):")
	for _, e := range ring.Events() {
		fmt.Printf("  cycle %5d  %-8v %s (warp %d, pc %d)\n", e.Cycle, e.Kind, e.Op, e.Warp, e.PC)
	}

	st := g2.Stats()
	fmt.Printf("\n%.1f%% of instructions bypassed the backend via reuse\n", 100*st.BypassRate())
}
