// Loadreuse: demonstrates the load-reuse rules of paper section VI-A.
// Three kernels read the same lookup table; they differ only in whether a
// store or a barrier separates the loads. The printed counters show how the
// per-warp store flags and per-block barrier counts gate reuse exactly as
// the memory model requires.
package main

import (
	"fmt"
	"log"

	wir "github.com/wirsim/wir"
)

const n = 1 << 13

// buildReader emits two identical rounds of table lookups. Between the
// rounds it optionally executes a store (setting the warp's store flag) or a
// barrier (advancing the block's reuse epoch and clearing store flags).
func buildReader(name string, table, out uint32, storeBetween, barrierBetween bool) *wir.Kernel {
	b := wir.NewKernelBuilder(name)
	gidx := b.R()
	tid := b.R()
	bid := b.R()
	bdim := b.R()
	b.S2R(tid, wir.Tid)
	b.S2R(bid, wir.CtaidX)
	b.S2R(bdim, wir.NtidX)
	b.IMad(gidx, bid, bdim, tid)

	addr := b.R()
	acc := b.R()
	v := b.R()
	idx := b.R()
	round := func() {
		// Eight strided lookups whose addresses depend only on threadIdx,
		// so every block issues identical address vectors.
		for k := 0; k < 8; k++ {
			b.AndI(idx, tid, 255)
			b.IAddI(idx, idx, int32(k*32))
			b.ShlI(addr, idx, 2)
			b.IAddI(addr, addr, int32(table))
			b.Ld(v, wir.Global, addr, 0)
			b.FAdd(acc, acc, v)
		}
	}
	b.MovF(acc, 0)
	round()
	if storeBetween {
		// A single store makes every later load of this warp ineligible
		// until the next barrier.
		b.ShlI(addr, gidx, 2)
		b.IAddI(addr, addr, int32(out))
		b.St(wir.Global, addr, acc, 0)
	}
	if barrierBetween {
		b.Bar()
	}
	round()
	b.ShlI(addr, gidx, 2)
	b.IAddI(addr, addr, int32(out))
	b.St(wir.Global, addr, acc, 0)
	b.Exit()
	return b.MustBuild()
}

func run(storeBetween, barrierBetween bool) wir.Stats {
	cfg := wir.DefaultConfig(wir.RLPV)
	g, err := wir.NewGPU(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ms := g.Mem()
	table := ms.Alloc(512)
	for i := 0; i < 512; i++ {
		ms.StoreGlobal(table+uint32(i)*4, wir.F32Bits(float32(i%7)))
	}
	out := ms.Alloc(n)
	k := buildReader("reader", table, out, storeBetween, barrierBetween)
	if _, err := g.Run(&wir.Launch{Kernel: k, GridX: n / 256, DimX: 256}); err != nil {
		log.Fatal(err)
	}
	return g.Stats()
}

func main() {
	plain := run(false, false)
	withStore := run(true, false)
	withStoreBar := run(true, true)

	fmt.Printf("%-34s %12s %12s\n", "variant", "loads reused", "L1 accesses")
	fmt.Printf("%-34s %12d %12d\n", "no store between rounds", plain.LoadsReused, plain.L1DAccesses)
	fmt.Printf("%-34s %12d %12d\n", "store between rounds", withStore.LoadsReused, withStore.L1DAccesses)
	fmt.Printf("%-34s %12d %12d\n", "store then barrier between rounds", withStoreBar.LoadsReused, withStoreBar.L1DAccesses)
	fmt.Println("\nThe store suppresses reuse for the second round (the warp's store flag")
	fmt.Println("is set); the barrier clears the flags but advances the block's reuse")
	fmt.Println("epoch, so only loads after the barrier can match each other.")
}
