// Quickstart: assemble a small kernel, run it on the baseline GPU and on the
// full WIR design (RLPV), and show that results match while a large share of
// warp instructions bypass the backend by reusing prior results.
package main

import (
	"fmt"
	"log"

	wir "github.com/wirsim/wir"
)

// buildVecScale assembles out[i] = a*in[i] + b over one element per thread.
// The inputs are quantized to a few distinct values, the typical redundancy
// structure WIR exploits.
func buildVecScale(in, out uint32, n int) *wir.Kernel {
	b := wir.NewKernelBuilder("vecscale")
	gidx := b.R()
	tid := b.R()
	bid := b.R()
	bdim := b.R()
	b.S2R(tid, wir.Tid)
	b.S2R(bid, wir.CtaidX)
	b.S2R(bdim, wir.NtidX)
	b.IMad(gidx, bid, bdim, tid)

	addr := b.R()
	v := b.R()
	b.ShlI(addr, gidx, 2)
	b.IAddI(addr, addr, int32(in))
	b.Ld(v, wir.Global, addr, 0)
	b.FMulI(v, v, 3.0)
	b.FAddI(v, v, 1.0)
	b.ShlI(addr, gidx, 2)
	b.IAddI(addr, addr, int32(out))
	b.St(wir.Global, addr, v, 0)
	b.Exit()
	return b.MustBuild()
}

func run(model wir.Model, n int) ([]uint32, wir.Stats, uint64) {
	cfg := wir.DefaultConfig(model)
	g, err := wir.NewGPU(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ms := g.Mem()
	in := ms.Alloc(n)
	out := ms.Alloc(n)
	for i := 0; i < n; i++ {
		// Only 8 distinct input values: warps repeat each other's work.
		ms.StoreGlobal(in+uint32(i)*4, wir.F32Bits(float32(i%8)))
	}
	k := buildVecScale(in, out, n)
	cycles, err := g.Run(&wir.Launch{Kernel: k, GridX: n / 256, DimX: 256})
	if err != nil {
		log.Fatal(err)
	}
	return ms.Snapshot(out, n), g.Stats(), cycles
}

func main() {
	const n = 1 << 14
	base, _, baseCycles := run(wir.Base, n)
	rlpv, st, cycles := run(wir.RLPV, n)
	for i := range base {
		if base[i] != rlpv[i] {
			log.Fatalf("mismatch at %d: %#x != %#x", i, base[i], rlpv[i])
		}
	}
	fmt.Printf("results identical across models (%d words)\n", n)
	fmt.Printf("Base cycles: %d, RLPV cycles: %d\n", baseCycles, cycles)
	fmt.Printf("instructions issued: %d\n", st.Issued)
	fmt.Printf("reused prior results: %d (%.1f%%)\n", st.Bypassed, 100*st.BypassRate())
	fmt.Printf("register writes avoided by value sharing: %d\n", st.WritesShared)
	cfg := wir.DefaultConfig(wir.RLPV)
	eb := wir.Energy(cfg, &st)
	fmt.Printf("energy: SM %.2f uJ, GPU %.2f uJ\n", eb.SM()/1e6, eb.Total()/1e6)
}
