// Designspace: sweep the two main sizing knobs of the WIR design — reuse
// buffer entries (paper Figure 21) and added backend pipeline delay (paper
// Figure 22) — on a single redundancy-heavy kernel, printing the resulting
// reuse rate and speedup.
package main

import (
	"fmt"
	"log"

	wir "github.com/wirsim/wir"
)

// buildPoly assembles a polynomial-evaluation kernel over a quantized grid
// of inputs (16 distinct values), a dense source of repeated computations.
func buildPoly(in, out uint32) *wir.Kernel {
	b := wir.NewKernelBuilder("poly")
	gidx := b.R()
	tid := b.R()
	bid := b.R()
	bdim := b.R()
	b.S2R(tid, wir.Tid)
	b.S2R(bid, wir.CtaidX)
	b.S2R(bdim, wir.NtidX)
	b.IMad(gidx, bid, bdim, tid)
	addr := b.R()
	x := b.R()
	acc := b.R()
	c := b.R()
	b.ShlI(addr, gidx, 2)
	b.IAddI(addr, addr, int32(in))
	b.Ld(x, wir.Global, addr, 0)
	// Horner chain of degree 8.
	b.MovF(acc, 0.5)
	for i := 0; i < 8; i++ {
		b.MovF(c, float32(i)*0.25-1)
		b.FFma(acc, acc, x, c)
	}
	b.ShlI(addr, gidx, 2)
	b.IAddI(addr, addr, int32(out))
	b.St(wir.Global, addr, acc, 0)
	b.Exit()
	return b.MustBuild()
}

func run(cfg wir.Config, n int) (wir.Stats, uint64) {
	g, err := wir.NewGPU(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ms := g.Mem()
	in := ms.Alloc(n)
	out := ms.Alloc(n)
	for i := 0; i < n; i++ {
		ms.StoreGlobal(in+uint32(i)*4, wir.F32Bits(float32(i%16)*0.125))
	}
	cycles, err := g.Run(&wir.Launch{Kernel: buildPoly(in, out), GridX: n / 256, DimX: 256})
	if err != nil {
		log.Fatal(err)
	}
	return g.Stats(), cycles
}

func main() {
	const n = 1 << 14
	_, baseCycles := run(wir.DefaultConfig(wir.Base), n)

	fmt.Println("reuse buffer size sweep (cf. paper Figure 21):")
	fmt.Printf("%8s %10s %14s\n", "entries", "reused", "pending share")
	for _, entries := range []int{32, 64, 128, 256, 512} {
		cfg := wir.DefaultConfig(wir.RLPV)
		cfg.ReuseEntries = entries
		st, _ := run(cfg, n)
		pend := 0.0
		if st.ReuseHits > 0 {
			pend = float64(st.PendingHits) / float64(st.ReuseHits)
		}
		fmt.Printf("%8d %9.1f%% %13.1f%%\n", entries, 100*st.BypassRate(), 100*pend)
	}

	fmt.Println("\nbackend delay sweep (cf. paper Figure 22):")
	fmt.Printf("%8s %10s\n", "delay", "speedup")
	for _, d := range []int{3, 4, 5, 6, 7} {
		cfg := wir.DefaultConfig(wir.RLPV)
		cfg.BackendDelay = d
		_, cycles := run(cfg, n)
		fmt.Printf("      D%d %10.3f\n", d, float64(baseCycles)/float64(cycles))
	}
}
