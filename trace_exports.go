package wir

import "github.com/wirsim/wir/internal/trace"

// TraceEvent is one pipeline occurrence (issue, bypass, dispatch, retire,
// dummy MOV, barrier) reported by the simulator when a tracer is attached
// with GPU.SetTracer.
type TraceEvent = trace.Event

// TraceSink receives pipeline events.
type TraceSink = trace.Sink

// TraceWriter streams pipeline events as text lines; set Max to bound output.
type TraceWriter = trace.Writer

// TraceRing keeps the most recent pipeline events for post-mortem inspection.
type TraceRing = trace.Ring

// NewTraceRing returns a ring buffer holding n events.
func NewTraceRing(n int) *TraceRing { return trace.NewRing(n) }

// TraceJSONWriter streams pipeline events as schema-versioned JSON lines,
// optionally filtered by kind, SM and warp.
type TraceJSONWriter = trace.JSONWriter

// NewTraceJSONWriter returns a JSONL sink writing to w with the schema header
// already emitted.
var NewTraceJSONWriter = trace.NewJSONWriter

// TraceMulti fans pipeline events out to several sinks.
type TraceMulti = trace.Multi

// ReadTraceJSONL parses a JSONL trace written by a TraceJSONWriter.
var ReadTraceJSONL = trace.ReadJSONL

// Pipeline event kinds.
const (
	TraceIssue    = trace.KindIssue
	TraceBypass   = trace.KindBypass
	TraceDispatch = trace.KindDispatch
	TraceRetire   = trace.KindRetire
	TraceDummy    = trace.KindDummy
	TraceBarrier  = trace.KindBarrier
)
