// Distributed-sweep conformance suite: a sweep executed through the
// dist coordinator/worker protocol must merge to BYTE-IDENTICAL results — the
// raw-runs CSV with every wir-stats/1 counter and energy component — no
// matter how many workers serve it, which of them die, and what the dist
// chaos injector does to the transport. Execution is always the same
// deterministic local simulation; the distribution layer is only allowed to
// move it, so any byte of difference is a protocol bug (lost unit, double
// merge, truncated result) by construction.
//
// Worker kills, duplicate deliveries, dropped results, suppressed heartbeats,
// truncated responses, and the zero-worker degradation path are each exercised
// on a seeded schedule; testing.Short() trims the schedule list so the CI race
// pass stays fast.
package wir_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/wirsim/wir/internal/config"
	"github.com/wirsim/wir/internal/dist"
	"github.com/wirsim/wir/internal/harness"
)

// distConfSMs keeps the simulations small; identical on every path.
const distConfSMs = 2

// distConfJobs is the sweep under test: benchmarks × models plus a mutated
// variant, so the payload path proves it carries fully-mutated configs.
func distConfJobs(short bool) []struct {
	abbr string
	m    config.Model
	v    *harness.Variant
} {
	vsb8 := &harness.Variant{Name: "VSB8", Mutate: func(c *config.Config) { c.VSBEntries = 8 }}
	// Short mode keeps both benchmarks and the variant path but trims the
	// grid: the schedules probe the protocol, not the simulations, and the
	// race pass shares the root package's per-package test timeout.
	jobs := []struct {
		abbr string
		m    config.Model
		v    *harness.Variant
	}{
		{"DW", config.Base, nil},
		{"DW", config.RLPV, nil},
		{"DW", config.RLPV, vsb8},
		{"KM", config.RLPV, nil},
	}
	if !short {
		jobs = append(jobs,
			struct {
				abbr string
				m    config.Model
				v    *harness.Variant
			}{"KM", config.Base, nil},
			struct {
				abbr string
				m    config.Model
				v    *harness.Variant
			}{"KM", config.RLPV, vsb8},
		)
		for _, abbr := range []string{"HS", "S2"} {
			jobs = append(jobs,
				struct {
					abbr string
					m    config.Model
					v    *harness.Variant
				}{abbr, config.Base, nil},
				struct {
					abbr string
					m    config.Model
					v    *harness.Variant
				}{abbr, config.RLPV, nil},
			)
		}
	}
	return jobs
}

// execUnit runs one KindRun unit on h, mirroring cmd/wirbench's worker
// handler: payload in, JSON-encoded harness.Result out.
func execUnit(h *harness.Harness, u dist.Unit) ([]byte, error) {
	var p dist.RunPayload
	if err := json.Unmarshal(u.Payload, &p); err != nil {
		return nil, dist.Permanent(err)
	}
	r, err := h.Execute(u.Key, p.Bench, p.Model, p.Cfg)
	if err != nil {
		return nil, dist.Permanent(err)
	}
	return json.Marshal(r)
}

// serialCSV runs the sweep on one local harness and returns the raw-runs CSV
// — the reference bytes every distributed execution must reproduce.
func serialCSV(t *testing.T, short bool) []byte {
	t.Helper()
	h := harness.New()
	h.SMs = distConfSMs
	for _, j := range distConfJobs(short) {
		if _, err := h.Run(j.abbr, j.m, j.v); err != nil {
			t.Fatalf("serial %s/%v: %v", j.abbr, j.m, err)
		}
	}
	var buf bytes.Buffer
	if err := h.WriteRunsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// distCSV runs the same sweep through a coordinator with nWorkers in-process
// workers under the given chaos spec ("" = none) and returns the merged CSV
// plus the coordinator summary. Killed workers respawn (a fresh registration,
// like a restarted process) until the sweep drains.
func distCSV(t *testing.T, short bool, nWorkers int, chaosSpec string) ([]byte, *dist.Summary) {
	t.Helper()
	var cz *dist.Chaos
	if chaosSpec != "" {
		var err error
		cz, err = dist.ParseChaos(chaosSpec)
		if err != nil {
			t.Fatal(err)
		}
	}
	localH := harness.New()
	localH.SMs = distConfSMs
	coord := dist.NewCoordinator(dist.Config{
		Lease:       300 * time.Millisecond,
		Heartbeat:   60 * time.Millisecond,
		Poll:        10 * time.Millisecond,
		Grace:       250 * time.Millisecond,
		MaxRetries:  2,
		BackoffBase: 10 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
		Tick:        10 * time.Millisecond,
		Chaos:       cz,
		Local:       func(u dist.Unit) ([]byte, error) { return execUnit(localH, u) },
	})
	defer coord.Close()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < nWorkers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wh := harness.New()
			wh.SMs = distConfSMs
			for ctx.Err() == nil {
				w := dist.NewWorker(srv.URL, dist.WorkerConfig{
					Name:     fmt.Sprintf("conf-%d", i),
					Kinds:    []string{dist.KindRun},
					Handler:  func(u dist.Unit) ([]byte, error) { return execUnit(wh, u) },
					Patience: 5 * time.Second,
				})
				err := w.Run(ctx)
				if err == nil || ctx.Err() != nil {
					return // drained or test over
				}
				// Chaos killed the worker: respawn, like a restarted process.
			}
		}(i)
	}

	h := harness.New()
	h.SMs = distConfSMs
	h.Exec = func(key, abbr string, m config.Model, cfg config.Config) (*harness.Result, error) {
		payload, err := json.Marshal(dist.RunPayload{Bench: abbr, Model: m, Cfg: cfg})
		if err != nil {
			return nil, err
		}
		out, err := coord.Do(dist.Unit{Key: key, Kind: dist.KindRun, Payload: payload})
		if err != nil {
			return nil, err
		}
		var r harness.Result
		if err := json.Unmarshal(out, &r); err != nil {
			return nil, err
		}
		return &r, nil
	}
	// Demand units concurrently, like a -j prewarm pool would.
	jobs := distConfJobs(short)
	errs := make([]error, len(jobs))
	var jw sync.WaitGroup
	for i, j := range jobs {
		jw.Add(1)
		go func(i int, abbr string, m config.Model, v *harness.Variant) {
			defer jw.Done()
			_, errs[i] = h.Run(abbr, m, v)
		}(i, j.abbr, j.m, j.v)
	}
	jw.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("dist %s/%v (chaos %q): %v", jobs[i].abbr, jobs[i].m, chaosSpec, err)
		}
	}
	coord.Drain()
	cancel()
	wg.Wait()
	var buf bytes.Buffer
	if err := h.WriteRunsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), coord.Snapshot()
}

// TestDistConformance: every chaos schedule must merge byte-identical CSVs.
func TestDistConformance(t *testing.T) {
	short := testing.Short()
	want := serialCSV(t, short)
	schedules := []struct {
		name    string
		workers int
		chaos   string
	}{
		{"no-chaos", 2, ""},
		{"worker-kill", 2, "7,0.2,kill"},
		{"duplicate-delivery", 2, "3,1,dupresult"},
	}
	if !short {
		schedules = append(schedules, []struct {
			name    string
			workers int
			chaos   string
		}{
			{"heartbeat-delay", 2, "5,0.5,hbdelay"},
			{"dropped-result", 2, "9,0.3,dropresult"},
			{"truncated-response", 2, "11,0.2,truncate"},
			{"everything", 3, "13,0.1,all"},
		}...)
	}
	for _, sc := range schedules {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			got, sum := distCSV(t, short, sc.workers, sc.chaos)
			if !bytes.Equal(got, want) {
				t.Fatalf("merged CSV differs from serial under schedule %q\nserial %d bytes, dist %d bytes",
					sc.chaos, len(want), len(got))
			}
			if int(sum.Counters.Completed) != len(distConfJobs(short)) {
				t.Errorf("completed=%d units, want %d", sum.Counters.Completed, len(distConfJobs(short)))
			}
			if sc.name == "duplicate-delivery" && sum.Counters.Duplicates == 0 {
				t.Error("dupresult at rate 1 injected no duplicates — schedule not exercised")
			}
		})
	}
}

// TestDistConformanceZeroWorkers: with no worker ever joining, the grace
// window expires and the coordinator's local degradation path must still
// produce the exact serial bytes.
func TestDistConformanceZeroWorkers(t *testing.T) {
	short := testing.Short()
	want := serialCSV(t, short)
	got, sum := distCSV(t, short, 0, "")
	if !bytes.Equal(got, want) {
		t.Fatal("zero-worker degradation CSV differs from serial")
	}
	if sum.Counters.LocalRuns == 0 {
		t.Error("local_runs=0, want every unit locally degraded")
	}
}
