package wir_test

import (
	"bytes"
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"testing"

	wir "github.com/wirsim/wir"
	"github.com/wirsim/wir/internal/bench"
	"github.com/wirsim/wir/internal/metrics"
)

// runInstrumented runs the KM benchmark with the full telemetry stack
// attached: registry, instruments, and an interval sampler.
func runInstrumented(t *testing.T, interval uint64) (*wir.GPU, *wir.MetricsRegistry, *wir.Instruments, *wir.Sampler, wir.Stats) {
	t.Helper()
	bm, err := bench.ByAbbr("KM")
	if err != nil {
		t.Fatal(err)
	}
	cfg := wir.DefaultConfig(wir.RLPV)
	cfg.NumSMs = 2
	g, err := wir.NewGPU(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := wir.NewMetricsRegistry()
	ins := wir.NewInstruments(reg)
	g.SetInstruments(ins)
	sp := wir.NewSampler(interval)
	sp.Registry = reg
	g.SetSampler(sp)

	w, err := bm.Setup(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(g); err != nil {
		t.Fatal(err)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	g.FlushSampler()
	return g, reg, ins, sp, g.Stats()
}

// TestIntervalSamplerReconciles is the acceptance check for the interval time
// series: the summed per-interval counter deltas must equal the final
// cumulative totals, field for field.
func TestIntervalSamplerReconciles(t *testing.T) {
	_, _, _, sp, st := runInstrumented(t, 1000)
	if len(sp.Samples()) < 2 {
		t.Fatalf("only %d intervals recorded", len(sp.Samples()))
	}
	total := sp.SumDeltas()
	tm, fm := total.Map(), st.Map()
	for name, want := range fm {
		if tm[name] != want {
			t.Errorf("counter %s: summed intervals %d != final total %d", name, tm[name], want)
		}
	}

	// The exported JSONL stream must parse and carry the same reconciliation.
	var buf bytes.Buffer
	if err := sp.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := metrics.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var issued uint64
	for _, s := range samples {
		issued += s.Counters["Issued"]
	}
	if issued != st.Issued {
		t.Fatalf("JSONL intervals sum Issued to %d, final total %d", issued, st.Issued)
	}
	last := samples[len(samples)-1]
	if last.End != st.Cycles {
		t.Fatalf("flushed tail interval ends at %d, run took %d cycles", last.End, st.Cycles)
	}
}

// TestStallAttributionPartitions is the acceptance check for stall
// attribution: every scheduler-slot cycle is either an issue or exactly one
// stall reason, so issue + stalls = slots and the stall fractions sum to 1.0.
func TestStallAttributionPartitions(t *testing.T) {
	g, _, _, _, st := runInstrumented(t, 1000)
	sr := g.StallReport()
	if sr.SchedSlotCycles == 0 {
		t.Fatal("no scheduler-slot cycles recorded")
	}
	if sr.IssueCycles+sr.Stalls.Total() != sr.SchedSlotCycles {
		t.Fatalf("issue %d + stalls %d != slot cycles %d",
			sr.IssueCycles, sr.Stalls.Total(), sr.SchedSlotCycles)
	}
	if sr.IssueCycles != st.Issued {
		t.Fatalf("issue cycles %d != issued instructions %d (one issue per slot per cycle)",
			sr.IssueCycles, st.Issued)
	}
	var sum float64
	for _, f := range sr.Fractions() {
		sum += f
	}
	if math.Abs(sum-1.0) > 1e-9 {
		t.Fatalf("stall fractions sum to %g, want 1.0", sum)
	}
	// Per-slot tallies are a partition of the aggregate.
	var perSlot uint64
	for i := range sr.PerSlot {
		perSlot += sr.PerSlot[i].Total()
	}
	if perSlot != sr.Stalls.Total() {
		t.Fatalf("per-slot stalls %d != aggregate %d", perSlot, sr.Stalls.Total())
	}
}

// TestInstrumentHistograms checks the hot-path observations hang together:
// every retired warp instruction contributes one issue-latency and one
// bank-retry sample, and the summed bank-retry samples equal the counter the
// SM keeps independently (minus dummy-MOV retries, which are not flights).
func TestInstrumentHistograms(t *testing.T) {
	_, _, ins, _, st := runInstrumented(t, 1000)
	flights := st.Backend + st.Bypassed
	if got := ins.IssueLatency.Count(); got != flights {
		t.Errorf("issue-latency samples %d != retired flights %d", got, flights)
	}
	if got := ins.BankRetries.Count(); got != flights {
		t.Errorf("bank-retry samples %d != retired flights %d", got, flights)
	}
	if ins.BankRetries.Sum() > st.BankRetries {
		t.Errorf("per-flight retries (%d) exceed the global retry counter (%d)",
			ins.BankRetries.Sum(), st.BankRetries)
	}
	if st.ReuseHits > 0 && ins.ReuseDistance.Count() == 0 {
		t.Error("reuse hits recorded but no reuse-distance samples")
	}
	if st.L1DAccesses > 0 && ins.MSHROccupancy.Count() == 0 {
		t.Error("L1D accesses recorded but no MSHR-occupancy samples")
	}
	if st.PendingHits > 0 && ins.PendingWait.Count() == 0 {
		t.Error("pending-retry hits recorded but no pending-wait samples")
	}
}

// TestMetricsEndpoint scrapes a live registry over HTTP after a run.
func TestMetricsEndpoint(t *testing.T) {
	g, reg, _, _, _ := runInstrumented(t, 1000)
	sr := g.StallReport()
	sr.Publish(reg)
	srv := httptest.NewServer(wir.MetricsHandler(reg))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	out := string(body)
	for _, want := range []string{
		"wir_reuse_distance_count",
		"wir_issue_latency_cycles_bucket",
		"wir_interval_ipc",
		"wir_sched_slot_cycles",
		"wir_stall_cycles_mem_latency",
		"wir_sm0_regs_in_use",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestTelemetryDetachedIsClean: a GPU without instruments must run
// identically (no telemetry state leaks into the timing model) and report
// empty telemetry rather than panicking.
func TestTelemetryDetachedIsClean(t *testing.T) {
	bm, err := bench.ByAbbr("KM")
	if err != nil {
		t.Fatal(err)
	}
	run := func(attach bool) wir.Stats {
		cfg := wir.DefaultConfig(wir.RLPV)
		cfg.NumSMs = 2
		g, err := wir.NewGPU(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if attach {
			g.SetInstruments(wir.NewInstruments(wir.NewMetricsRegistry()))
		}
		w, err := bm.Setup(g)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Run(g); err != nil {
			t.Fatal(err)
		}
		return g.Stats()
	}
	plain := run(false)
	instrumented := run(true)
	if plain != instrumented {
		t.Fatalf("telemetry changed simulation results:\nplain:        %+v\ninstrumented: %+v", plain, instrumented)
	}
	// Telemetry accessors are safe with nothing attached.
	cfg := wir.DefaultConfig(wir.RLPV)
	cfg.NumSMs = 1
	g, err := wir.NewGPU(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.FlushSampler()
	if sr := g.StallReport(); sr.IssueCycles != 0 || sr.Stalls.Total() != 0 {
		t.Fatalf("detached stall report not empty: %+v", sr)
	}
}
