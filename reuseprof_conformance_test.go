// Reuse-profiler conformance: attaching the decision-level reuse/VSB
// profiler is pure observation. Every simulation artifact — cycles,
// wir-stats/1 counters, energy totals, the emitted wir-trace/1 stream, output
// memory — must be bit-identical with the profiler on or off, in serial and
// in goroutine-per-SM parallel stepping. On top of the identity contract the
// profiler's own numbers must reconcile exactly: the miss-reason taxonomy
// partitions every reuse-buffer lookup, the hit/miss bucket groups match both
// the aggregate stats counters and the per-PC attribution totals, the
// eviction ledger's counted causes match ReuseEvicts, and the shadow tables
// never report less achievable reuse than was achieved.
package wir_test

import (
	"fmt"
	"testing"

	wir "github.com/wirsim/wir"
	"github.com/wirsim/wir/internal/bench"
	"github.com/wirsim/wir/internal/metrics"
	"github.com/wirsim/wir/internal/reuseprof"
	"github.com/wirsim/wir/internal/trace"

	"bytes"
)

// rpConfRun mirrors confRun with an optional reuseprof collector attached; it
// returns the artifacts plus the collector for reconciliation checks.
func rpConfRun(t *testing.T, abbr string, m wir.Model, parallel, profiled bool) (confResult, *reuseprof.Collector) {
	t.Helper()
	cfg := wir.DefaultConfig(m)
	cfg.NumSMs = 4
	g, err := wir.NewGPU(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.SetParallel(parallel)
	var rp *reuseprof.Collector
	if profiled {
		rp = g.NewReuseProf()
		g.SetReuseProf(rp)
	}
	var buf bytes.Buffer
	jw := trace.NewJSONWriter(&buf)
	jw.FilterKinds(trace.KindRetire, trace.KindBypass, trace.KindBarrier)
	g.SetTracer(jw)
	bm, err := bench.ByAbbr(abbr)
	if err != nil {
		t.Fatal(err)
	}
	w, err := bm.Setup(g)
	if err != nil {
		t.Fatal(err)
	}
	cycles, err := w.Run(g)
	if err != nil {
		t.Fatalf("%s/%v parallel=%v profiled=%v: %v", abbr, m, parallel, profiled, err)
	}
	if err := jw.Err(); err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	return confResult{
		cycles: cycles,
		stats:  st,
		energy: wir.Energy(cfg, &st),
		trace:  buf.Bytes(),
		output: g.Mem().Snapshot(w.OutBase, w.OutWords),
	}, rp
}

// reconcileReuse holds the profiler's taxonomy, ledger, and shadow sums
// against the aggregate wir-stats/1 counters of the same run.
func reconcileReuse(t *testing.T, rp *reuseprof.Collector, st *wir.Stats) {
	t.Helper()
	if got := rp.Lookups(); got != st.ReuseLookups {
		t.Errorf("taxonomy sums to %d lookups, stats say %d", got, st.ReuseLookups)
	}
	tax := rp.Tax()
	if hits := tax[reuseprof.BucketHit] + tax[reuseprof.BucketPendingResolved]; hits != st.ReuseHits {
		t.Errorf("hit buckets sum to %d, stats say %d", hits, st.ReuseHits)
	}
	misses := tax[reuseprof.BucketMissCold] + tax[reuseprof.BucketMissEvicted] +
		tax[reuseprof.BucketMissBarrier] + tax[reuseprof.BucketMissBlock]
	if misses != st.ReuseMisses {
		t.Errorf("miss buckets sum to %d, stats say %d", misses, st.ReuseMisses)
	}
	vtax := rp.VSBTax()
	if vsum := vtax[reuseprof.VSBTaxHit] + vtax[reuseprof.VSBTaxMiss] + vtax[reuseprof.VSBTaxVerifyFail]; vsum != st.VSBLookups {
		t.Errorf("VSB taxonomy sums to %d lookups, stats say %d", vsum, st.VSBLookups)
	}
	if vtax[reuseprof.VSBTaxHit] != st.VSBHits {
		t.Errorf("VSB taxonomy hits %d, stats say %d", vtax[reuseprof.VSBTaxHit], st.VSBHits)
	}
	// Conflict, capacity, and reclaim displacements are exactly what the
	// engine counts as ReuseEvicts; block-complete and launch-flush scrubs
	// are ledgered under their own causes but deliberately outside it.
	counted := rp.EvictTotal(reuseprof.EvictConflict) +
		rp.EvictTotal(reuseprof.EvictCapacity) +
		rp.EvictTotal(reuseprof.EvictReclaim)
	if counted != st.ReuseEvicts {
		t.Errorf("eviction ledger counts %d, stats say ReuseEvicts=%d", counted, st.ReuseEvicts)
	}
	if rp.ShadowHits() < rp.RealHits() {
		t.Errorf("shadow hits %d < real hits %d — an infinite buffer can't do worse", rp.ShadowHits(), rp.RealHits())
	}
	// Per-PC tables partition the initial lookups, the hits, and the shadow
	// hits exactly.
	var pcLookups, pcHits, pcShadow uint64
	for _, ks := range rp.Report().Kernels {
		pcLookups += ks.Lookups
		pcHits += ks.Hits
		pcShadow += ks.ShadowHits
	}
	if pcLookups != rp.InitialLookups() {
		t.Errorf("per-PC lookups sum to %d, collector counted %d initial lookups", pcLookups, rp.InitialLookups())
	}
	if pcHits != st.ReuseHits {
		t.Errorf("per-PC hits sum to %d, stats say %d", pcHits, st.ReuseHits)
	}
	if pcShadow != rp.ShadowHits() {
		t.Errorf("per-PC shadow hits sum to %d, collector says %d", pcShadow, rp.ShadowHits())
	}
}

// TestReuseProfConformance holds the identity contract on benchmark runs:
// profiled output equals unprofiled output exactly, serial and parallel, and
// the profiled run's telemetry reconciles with its (identical) stats.
func TestReuseProfConformance(t *testing.T) {
	benches := []string{"KM", "HS", "BP"}
	models := conformanceModels
	parallels := []bool{false, true}
	if testing.Short() {
		// The race pass runs -short; one benchmark on the reuse-bearing model
		// under goroutine-per-SM stepping keeps the identity contract
		// race-covered while staying inside the package test budget. Base runs
		// no reuse buffer and the serial variant has no goroutines for the
		// race detector to watch, so both are full-mode only (the serial
		// reconciliation path stays short-covered by the reconciliation test).
		benches = []string{"KM"}
		models = []wir.Model{wir.RLPV}
		parallels = []bool{true}
	}
	for _, abbr := range benches {
		for _, m := range models {
			for _, parallel := range parallels {
				abbr, m, parallel := abbr, m, parallel
				t.Run(fmt.Sprintf("%s/%v/parallel=%v", abbr, m, parallel), func(t *testing.T) {
					t.Parallel()
					plain, _ := rpConfRun(t, abbr, m, parallel, false)
					profiled, rp := rpConfRun(t, abbr, m, parallel, true)
					compareConf(t, abbr, plain, profiled)
					reconcileReuse(t, rp, &profiled.stats)
				})
			}
		}
	}
}

// TestReuseProfReconciliation is the cross-layer check: on serial runs with
// per-PC attribution riding along (and with instruments both attached and
// detached), the taxonomy bucket groups must equal the attr collector's reuse
// totals as well as the stats counters — three independent accountings of the
// same decisions.
func TestReuseProfReconciliation(t *testing.T) {
	benches := []string{"KM", "HS", "BP"}
	models := conformanceModels
	if testing.Short() {
		benches = []string{"KM"}
		models = []wir.Model{wir.RLPV}
	}
	for _, abbr := range benches {
		for _, m := range models {
			for _, instrumented := range []bool{false, true} {
				abbr, m, instrumented := abbr, m, instrumented
				t.Run(fmt.Sprintf("%s/%v/instruments=%v", abbr, m, instrumented), func(t *testing.T) {
					t.Parallel()
					cfg := wir.DefaultConfig(m)
					cfg.NumSMs = 4
					g, err := wir.NewGPU(cfg)
					if err != nil {
						t.Fatal(err)
					}
					rp := g.NewReuseProf()
					g.SetReuseProf(rp)
					ac := wir.NewAttrCollector()
					g.SetAttribution(ac)
					if instrumented {
						g.SetInstruments(metrics.NewInstruments(metrics.NewRegistry()))
					}
					bm, err := bench.ByAbbr(abbr)
					if err != nil {
						t.Fatal(err)
					}
					w, err := bm.Setup(g)
					if err != nil {
						t.Fatal(err)
					}
					if _, err := w.Run(g); err != nil {
						t.Fatal(err)
					}
					st := g.Stats()
					reconcileReuse(t, rp, &st)
					tot := ac.Totals()
					tax := rp.Tax()
					if hits := tax[reuseprof.BucketHit] + tax[reuseprof.BucketPendingResolved]; hits != tot.ReuseHits {
						t.Errorf("taxonomy hit buckets %d != attr reuse hits %d", hits, tot.ReuseHits)
					}
					misses := tax[reuseprof.BucketMissCold] + tax[reuseprof.BucketMissEvicted] +
						tax[reuseprof.BucketMissBarrier] + tax[reuseprof.BucketMissBlock]
					if misses != tot.ReuseMisses {
						t.Errorf("taxonomy miss buckets %d != attr reuse misses %d", misses, tot.ReuseMisses)
					}
				})
			}
		}
	}
}

// TestReuseProfMonotoneAcrossRuns holds that one collector attached across
// two g.Run calls accumulates (every counter monotone) while the simulation
// still computes the right answer, and that detaching returns the SMs to the
// unprofiled path without disturbing the collector's totals.
func TestReuseProfMonotoneAcrossRuns(t *testing.T) {
	const n = 2048
	cfg := wir.DefaultConfig(wir.RLPV)
	cfg.NumSMs = 2
	g, err := wir.NewGPU(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rp := g.NewReuseProf()
	g.SetReuseProf(rp)
	ms := g.Mem()
	in := ms.Alloc(n)
	out := ms.Alloc(n)
	for i := 0; i < n; i++ {
		ms.StoreGlobal(in+uint32(i)*4, wir.F32Bits(float32(i%8)))
	}
	k := buildScaleKernel(in, out)

	launch := &wir.Launch{Kernel: k, GridX: n / 256, DimX: 256}
	if _, err := g.Run(launch); err != nil {
		t.Fatal(err)
	}
	first := rp.Lookups()
	firstShadow := rp.ShadowHits()
	if first == 0 {
		t.Fatal("no reuse lookups recorded on an RLPV run")
	}
	if _, err := g.Run(launch); err != nil {
		t.Fatal(err)
	}
	if rp.Lookups() <= first {
		t.Fatalf("lookups not monotone: %d -> %d", first, rp.Lookups())
	}
	if rp.ShadowHits() < firstShadow {
		t.Fatalf("shadow hits went backwards: %d -> %d", firstShadow, rp.ShadowHits())
	}
	st := g.Stats()
	reconcileReuse(t, rp, &st)

	// Detach, run again: the collector must stop accumulating.
	g.SetReuseProf(nil)
	frozen := rp.Lookups()
	if _, err := g.Run(launch); err != nil {
		t.Fatal(err)
	}
	if rp.Lookups() != frozen {
		t.Fatalf("detached collector still accumulated: %d -> %d", frozen, rp.Lookups())
	}

	got := ms.Snapshot(out, n)
	for i := 0; i < n; i++ {
		want := wir.F32Bits(3*float32(i%8) + 1)
		if got[i] != want {
			t.Fatalf("out[%d] = %#x, want %#x", i, got[i], want)
		}
	}
}

// TestReuseProfMergeSums holds that merging per-run collectors into an empty
// target (the harness's merged-artifact path) preserves every total as the
// sum of the parts, and keeps both runs' kernel sections.
func TestReuseProfMergeSums(t *testing.T) {
	if testing.Short() {
		t.Skip("merge arithmetic is covered by the reuseprof white-box tests; full mode exercises the benchmark-scale merge")
	}
	_, a := rpConfRun(t, "KM", wir.RLPV, false, true)
	_, b := rpConfRun(t, "BP", wir.RLPV, false, true)

	wantLookups := a.Lookups() + b.Lookups()
	wantShadow := a.ShadowHits() + b.ShadowHits()
	wantDistinct := a.DistinctTags() + b.DistinctTags()
	var wantTax [reuseprof.NumBuckets]uint64
	at, bt := a.Tax(), b.Tax()
	for i := range wantTax {
		wantTax[i] = at[i] + bt[i]
	}
	kernels := map[string]uint64{}
	for _, c := range []*reuseprof.Collector{a, b} {
		for _, ks := range c.Report().Kernels {
			kernels[ks.Kernel] += ks.Lookups
		}
	}

	m := reuseprof.NewCollector(0)
	m.Merge(a)
	m.Merge(b)
	if m.Lookups() != wantLookups || m.Tax() != wantTax ||
		m.ShadowHits() != wantShadow || m.DistinctTags() != wantDistinct {
		t.Fatalf("merged totals are not the sum of parts:\ngot  %d %v\nwant %d %v",
			m.Lookups(), m.Tax(), wantLookups, wantTax)
	}
	rep := m.Report()
	if len(rep.Kernels) != len(kernels) {
		t.Fatalf("merged report has %d kernel sections, want %d", len(rep.Kernels), len(kernels))
	}
	for _, ks := range rep.Kernels {
		if want, ok := kernels[ks.Kernel]; !ok || ks.Lookups != want {
			t.Errorf("merged kernel %q lookups = %d, want %d", ks.Kernel, ks.Lookups, want)
		}
	}
}
