// Determinism conformance suite: parallel execution — goroutine-per-SM
// stepping inside one run, and the concurrent harness sweep across runs —
// must be bit-identical to serial execution. Every comparison below is exact:
// wir-stats/1 counters compare with struct equality, wir-trace/1 streams
// byte-for-byte as emitted JSONL, energy totals as float equality on every
// component, and output images word-for-word.
//
// The full suite covers every benchmark of the paper's evaluation plus ≥50
// fuzz seeds on Base and RLPV; testing.Short() trims both dimensions so the
// CI race pass (`go test -race -short ./...`) still exercises each layer.
package wir_test

import (
	"bytes"
	"fmt"
	"testing"

	wir "github.com/wirsim/wir"
	"github.com/wirsim/wir/internal/bench"
	"github.com/wirsim/wir/internal/fuzz"
	"github.com/wirsim/wir/internal/harness"
	"github.com/wirsim/wir/internal/trace"
)

// confRun executes one suite benchmark serially or in parallel and returns
// every observable artifact the determinism contract covers.
type confResult struct {
	cycles uint64
	stats  wir.Stats
	energy wir.EnergyBreakdown
	trace  []byte
	output []uint32
}

func confRun(t *testing.T, abbr string, m wir.Model, parallel bool) confResult {
	t.Helper()
	cfg := wir.DefaultConfig(m)
	cfg.NumSMs = 4 // >1 so the gate chain is exercised; small so the suite fits CI
	g, err := wir.NewGPU(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.SetParallel(parallel)
	var buf bytes.Buffer
	jw := trace.NewJSONWriter(&buf)
	jw.FilterKinds(trace.KindRetire, trace.KindBypass, trace.KindBarrier)
	g.SetTracer(jw)
	bm, err := bench.ByAbbr(abbr)
	if err != nil {
		t.Fatal(err)
	}
	w, err := bm.Setup(g)
	if err != nil {
		t.Fatal(err)
	}
	cycles, err := w.Run(g)
	if err != nil {
		t.Fatalf("%s/%v parallel=%v: %v", abbr, m, parallel, err)
	}
	if err := jw.Err(); err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	return confResult{
		cycles: cycles,
		stats:  st,
		energy: wir.Energy(cfg, &st),
		trace:  buf.Bytes(),
		output: g.Mem().Snapshot(w.OutBase, w.OutWords),
	}
}

func compareConf(t *testing.T, name string, serial, parallel confResult) {
	t.Helper()
	if serial.cycles != parallel.cycles {
		t.Errorf("%s: cycles diverge: serial %d, parallel %d", name, serial.cycles, parallel.cycles)
	}
	if serial.stats != parallel.stats {
		t.Errorf("%s: wir-stats/1 counters diverge:\nserial:   %+v\nparallel: %+v", name, serial.stats, parallel.stats)
	}
	if serial.energy != parallel.energy {
		t.Errorf("%s: energy totals diverge:\nserial:   %+v\nparallel: %+v", name, serial.energy, parallel.energy)
	}
	if !bytes.Equal(serial.trace, parallel.trace) {
		t.Errorf("%s: wir-trace/1 streams are not byte-identical (%d vs %d bytes)",
			name, len(serial.trace), len(parallel.trace))
	}
	if len(serial.output) != len(parallel.output) {
		t.Fatalf("%s: output lengths diverge", name)
	}
	for i := range serial.output {
		if serial.output[i] != parallel.output[i] {
			t.Errorf("%s: out[%d] = %#x serial, %#x parallel", name, i, serial.output[i], parallel.output[i])
			break
		}
	}
}

// conformanceModels is both machine models the contract covers.
var conformanceModels = []wir.Model{wir.Base, wir.RLPV}

// TestParallelConformanceSuite holds goroutine-per-SM stepping bit-identical
// to serial stepping on the benchmark suite.
func TestParallelConformanceSuite(t *testing.T) {
	benches := bench.All()
	if testing.Short() {
		// Trimmed -race subset: a scratchpad+barrier benchmark, a
		// texture/const benchmark, and a divergence-heavy one.
		var trimmed []*bench.Benchmark
		for _, b := range benches {
			switch b.Abbr {
			case "KM", "HS", "BP":
				trimmed = append(trimmed, b)
			}
		}
		benches = trimmed
	}
	for _, b := range benches {
		for _, m := range conformanceModels {
			b, m := b, m
			t.Run(fmt.Sprintf("%s/%v", b.Abbr, m), func(t *testing.T) {
				t.Parallel()
				serial := confRun(t, b.Abbr, m, false)
				par := confRun(t, b.Abbr, m, true)
				compareConf(t, b.Abbr, serial, par)
			})
		}
	}
}

// TestParallelConformanceFuzz replays ≥50 generated programs through both
// stepping modes on both models and demands identical artifacts, including
// the recorded retire streams.
func TestParallelConformanceFuzz(t *testing.T) {
	seeds := 50
	if testing.Short() {
		seeds = 8
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		for _, m := range conformanceModels {
			seed, m := seed, m
			t.Run(fmt.Sprintf("seed%d/%v", seed, m), func(t *testing.T) {
				t.Parallel()
				o := fuzz.DefaultOptions(seed)
				o.WithShared = seed%2 == 1
				serial := fuzzConfRun(t, o, m, false)
				par := fuzzConfRun(t, o, m, true)
				if serial.res.Cycles != par.res.Cycles {
					t.Errorf("cycles diverge: serial %d, parallel %d", serial.res.Cycles, par.res.Cycles)
				}
				if serial.res.Stats != par.res.Stats {
					t.Errorf("stats diverge:\nserial:   %+v\nparallel: %+v", serial.res.Stats, par.res.Stats)
				}
				if !bytes.Equal(serial.trace, par.trace) {
					t.Errorf("wir-trace/1 streams are not byte-identical (%d vs %d bytes)",
						len(serial.trace), len(par.trace))
				}
				if len(serial.res.Output) != len(par.res.Output) {
					t.Fatal("output lengths diverge")
				}
				for i := range serial.res.Output {
					if serial.res.Output[i] != par.res.Output[i] {
						t.Errorf("out[%d] = %#x serial, %#x parallel", i, serial.res.Output[i], par.res.Output[i])
						break
					}
				}
				if err := fuzz.Check(serial.res, nil, nil); err != nil {
					t.Errorf("serial run not clean: %v", err)
				}
				if err := fuzz.Check(par.res, nil, nil); err != nil {
					t.Errorf("parallel run not clean: %v", err)
				}
			})
		}
	}
}

type fuzzConf struct {
	res   *fuzz.Result
	trace []byte
}

func fuzzConfRun(t *testing.T, o fuzz.Options, m wir.Model, parallel bool) fuzzConf {
	t.Helper()
	var buf bytes.Buffer
	jw := trace.NewJSONWriter(&buf)
	jw.FilterKinds(trace.KindRetire, trace.KindBypass, trace.KindBarrier)
	res, err := fuzz.Execute(o, fuzz.RunConfig{
		Model: m, NumSMs: 4, Oracle: true, Parallel: parallel, Trace: jw,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RunErr != nil {
		t.Fatalf("seed %d parallel=%v: %v", o.Seed, parallel, res.RunErr)
	}
	if err := jw.Err(); err != nil {
		t.Fatal(err)
	}
	return fuzzConf{res: res, trace: buf.Bytes()}
}

// TestHarnessParallelismDeterminism holds the sweep-level worker pool to the
// same contract: a harness running on 8 workers produces the same results —
// and the same rendered report — as a serial one.
func TestHarnessParallelismDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("covered unabridged in the non-short pass")
	}
	render := func(workers int) (string, string) {
		h := harness.New()
		h.SMs = 2
		h.SetParallelism(workers)
		r, err := h.Fig17()
		if err != nil {
			t.Fatal(err)
		}
		var text bytes.Buffer
		r.WriteText(&text)
		var csv bytes.Buffer
		if err := h.WriteRunsCSV(&csv); err != nil {
			t.Fatal(err)
		}
		return text.String(), csv.String()
	}
	serialText, serialCSV := render(1)
	parText, parCSV := render(8)
	if serialText != parText {
		t.Errorf("Fig17 text diverges between -j 1 and -j 8:\nserial:\n%s\nparallel:\n%s", serialText, parText)
	}
	if serialCSV != parCSV {
		t.Errorf("runs CSV diverges between -j 1 and -j 8")
	}
}
