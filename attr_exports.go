package wir

import (
	"io"

	"github.com/wirsim/wir/internal/attr"
	"github.com/wirsim/wir/internal/metrics"
	"github.com/wirsim/wir/internal/pprofenc"
)

// AttrCollector accumulates per-(kernel, SM, PC) attribution: issue, bypass
// and retry counts, per-PC energy estimates, and stall cycles blamed on the
// blocking producer's PC. Attach with GPU.SetAttribution before the run.
type AttrCollector = attr.Collector

// NewAttrCollector returns an empty collector costed with the default 45 nm
// energy coefficients.
func NewAttrCollector() *AttrCollector { return attr.NewCollector() }

// PCStats is one program counter's attribution record.
type PCStats = attr.PCStats

// Hotspot is one row of the merged per-PC hotspot ranking, as embedded in
// the wir-stats/1 report.
type Hotspot = metrics.Hotspot

// WriteHotspots renders hotspot rows as an aligned text table.
func WriteHotspots(w io.Writer, hs []Hotspot) error { return attr.WriteHotspots(w, hs) }

// PprofProfile is the in-memory form of a pprof profile.proto, encoded and
// decoded without external dependencies.
type PprofProfile = pprofenc.Profile

// ParsePprof decodes a profile.proto blob (gzip'd or raw).
var ParsePprof = pprofenc.Parse
