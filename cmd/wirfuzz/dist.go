// Distributed fuzz fan-out: wirfuzz -serve-sweep shards the seed range into
// dist.KindFuzz units and leases them to wirfuzz -worker processes; failures
// merge back in shard order, so the artifact and exit status are identical to
// the serial sweep regardless of worker count or chaos schedule.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/wirsim/wir/internal/chaos"
	"github.com/wirsim/wir/internal/config"
	"github.com/wirsim/wir/internal/dist"
)

// fuzzDist is the resolved distributed command line.
type fuzzDist struct {
	serve    string // -serve-sweep listen address
	worker   string // -worker coordinator URL
	name     string // -worker-name
	shard    int64  // seeds per unit
	lease    time.Duration
	grace    time.Duration
	retries  int
	chaos    string // -dist-chaos (transport faults; -chaos stays simulator faults)
	jsonPath string // -dist-json summary artifact
	patience time.Duration
}

// payloadFor renders one shard of the sweep as a self-contained unit payload.
// The simulator chaos spec ships in its ORIGINAL form: per-seed injectors are
// derived from (original seed + program seed), which is shard-invariant, so a
// seed sees the same faults no matter which shard — or machine — runs it.
func (sw *sweep) payloadFor(start, n int64) dist.FuzzPayload {
	return dist.FuzzPayload{
		Start: start, N: n,
		Model: sw.modelName, SMs: sw.sms, Len: sw.length,
		Shared: sw.shared, Watchdog: sw.watchdog, Chaos: sw.chaosSpec,
	}
}

// sweepFromPayload reconstructs a worker-side sweep from a shard payload.
func sweepFromPayload(p dist.FuzzPayload) (*sweep, error) {
	m, err := config.ParseModel(p.Model)
	if err != nil {
		return nil, err
	}
	switch p.Shared {
	case "auto", "on", "off":
	default:
		return nil, fmt.Errorf("bad shared setting %q", p.Shared)
	}
	sw := &sweep{
		model: m, modelName: p.Model, sms: p.SMs, length: p.Len,
		shared: p.Shared, watchdog: p.Watchdog,
	}
	if p.Chaos != "" {
		inj, err := chaos.Parse(p.Chaos)
		if err != nil {
			return nil, err
		}
		sw.chaosSpec = p.Chaos
		sw.chaosSeed = inj.Seed
		sw.chaosRest = p.Chaos[strings.Index(p.Chaos, ",")+1:]
	}
	return sw, nil
}

// runShard executes one shard payload and returns its failures as JSON. A
// malformed payload is permanent (re-running cannot fix it); shard execution
// itself is deterministic, so its failures are data, not errors.
func runShard(u dist.Unit) ([]byte, error) {
	var p dist.FuzzPayload
	if err := json.Unmarshal(u.Payload, &p); err != nil {
		return nil, dist.Permanent(fmt.Errorf("bad fuzz payload: %w", err))
	}
	sw, err := sweepFromPayload(p)
	if err != nil {
		return nil, dist.Permanent(err)
	}
	sw.sweepRange(p.Start, p.N)
	if sw.failures == nil {
		sw.failures = []failure{}
	}
	return json.Marshal(sw.failures)
}

// fuzzWorker is wirfuzz -worker: pull seed shards until the coordinator
// drains. Returns the process exit code.
func fuzzWorker(d fuzzDist) int {
	w := dist.NewWorker(d.worker, dist.WorkerConfig{
		Name:     d.name,
		Kinds:    []string{dist.KindFuzz},
		Handler:  runShard,
		Patience: d.patience,
		Logf:     func(format string, args ...any) { fmt.Fprintf(os.Stderr, "wirfuzz: "+format+"\n", args...) },
	})
	if err := w.Run(context.Background()); err != nil {
		fmt.Fprintf(os.Stderr, "wirfuzz: worker: %v\n", err)
		return exitRuntime
	}
	fmt.Fprintf(os.Stderr, "wirfuzz: worker done (%d shards)\n", w.UnitsDone())
	return exitOK
}

// distSweep shards [start, start+n) across workers, merges the failures in
// shard order into sw.failures, and reports each — producing the same records,
// order, and summary lines as the serial loop.
func (sw *sweep) distSweep(d fuzzDist, start, n int64) error {
	var cz *dist.Chaos
	if d.chaos != "" {
		var err error
		cz, err = dist.ParseChaos(d.chaos)
		if err != nil {
			return err
		}
	}
	coord := dist.NewCoordinator(dist.Config{
		Lease:      d.lease,
		Grace:      d.grace,
		MaxRetries: d.retries,
		Chaos:      cz,
		Local:      runShard,
		Logf:       func(format string, args ...any) { fmt.Fprintf(os.Stderr, "wirfuzz: "+format+"\n", args...) },
	})
	defer coord.Close()
	ln, err := net.Listen("tcp", d.serve)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: coord.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	fmt.Fprintf(os.Stderr, "wirfuzz: serving sweep on %s\n", ln.Addr())
	if d.jsonPath != "" {
		sw.guard.OnInterrupt(func() { writeDistSummary(d.jsonPath, coord.Snapshot()) })
	}

	// Submit every shard up front so idle workers can pull ahead, then merge
	// strictly in shard order.
	var futures []*dist.Future
	for s := start; s < start+n; s += d.shard {
		cnt := d.shard
		if s+cnt > start+n {
			cnt = start + n - s
		}
		payload, err := json.Marshal(sw.payloadFor(s, cnt))
		if err != nil {
			return err
		}
		fh := fnv.New64a()
		fh.Write(payload)
		key := fmt.Sprintf("fuzz/%s/%d+%d#%016x", sw.modelName, s, cnt, fh.Sum64())
		futures = append(futures, coord.Submit(dist.Unit{Key: key, Kind: dist.KindFuzz, Payload: payload}))
	}
	for i, f := range futures {
		out, err := f.Wait()
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		var fails []failure
		if err := json.Unmarshal(out, &fails); err != nil {
			return fmt.Errorf("shard %d: undecodable failure list: %w", i, err)
		}
		for _, fl := range fails {
			sw.record(fl)
			fmt.Fprintf(os.Stderr, "wirfuzz: seed %d FAILED (minimized to %d live of len %d): %s\n",
				fl.Seed, fl.Live, fl.Len, fl.Error)
		}
	}
	coord.DrainAndWait(5 * time.Second)
	s := coord.Snapshot()
	fmt.Fprintf(os.Stderr, "wirfuzz: dist sweep done: %d shards (%d dispatched, %d retries, %d reclaims, %d duplicates dropped, %d local)\n",
		s.Counters.Completed, s.Counters.Dispatched, s.Counters.Retries,
		s.Counters.Reclaims, s.Counters.Duplicates, s.Counters.LocalRuns)
	if cz != nil {
		fmt.Fprintf(os.Stderr, "wirfuzz: %s\n", cz.Summary())
	}
	if d.jsonPath != "" {
		return writeDistSummary(d.jsonPath, s)
	}
	return nil
}

// writeDistSummary writes the wir-dist/1 coordinator summary artifact.
func writeDistSummary(path string, s *dist.Summary) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wirfuzz: wrote %s summary to %s\n", dist.SummarySchema, path)
	return nil
}
