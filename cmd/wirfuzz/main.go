// Command wirfuzz sweeps the random-program generator over a seed range with
// the golden-model oracle, the deadlock watchdog, and (optionally) the chaos
// fault injector attached. Without chaos, every seed must run cleanly: zero
// oracle divergences, invariants intact, and — when the model under test is
// not Base — an output image bit-identical to the Base model's. With chaos,
// every seed must satisfy the robustness contract instead (value-changing
// faults are detected, wedges trip the watchdog, nothing corrupts silently).
//
// Failing seeds are minimized by shrinking the generated program (smallest
// failing -len, which generation is deterministic in) and written as a JSON
// artifact for CI to upload.
//
// Usage:
//
//	wirfuzz [-start N] [-n N] [-model RLPV] [-sms N] [-len N]
//	        [-shared auto|on|off] [-watchdog N] [-chaos seed,rate,kinds]
//	        [-out failures.json] [-v]
//
// Exit status: 0 when every seed passes, 1 on runtime errors, 2 on usage
// errors, 3 when any seed fails.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/wirsim/wir/internal/chaos"
	"github.com/wirsim/wir/internal/config"
	"github.com/wirsim/wir/internal/fuzz"
)

const (
	exitOK      = 0
	exitRuntime = 1
	exitUsage   = 2
	exitFault   = 3
)

// failure is one minimized failing seed, serialized into the -out artifact.
type failure struct {
	Seed   int64  `json:"seed"`
	Len    int    `json:"len"` // smallest failing program length
	Model  string `json:"model"`
	Shared bool   `json:"shared"`
	Chaos  string `json:"chaos,omitempty"`
	Error  string `json:"error"`
	Repro  string `json:"repro"`
}

// sweep holds the resolved command line.
type sweep struct {
	model     config.Model
	modelName string
	sms       int
	length    int
	shared    string // auto, on, off
	watchdog  uint64
	chaosSpec string // original spec; per-seed injectors re-derive the seed
	chaosRest string // "rate,kinds" tail of the spec
	chaosSeed int64
	verbose   bool
}

func main() {
	start := flag.Int64("start", 0, "first seed")
	n := flag.Int("n", 200, "number of seeds")
	modelName := flag.String("model", "RLPV", "machine model under test")
	sms := flag.Int("sms", 2, "number of simulated SMs")
	length := flag.Int("len", 24, "instructions in the generated top-level block")
	shared := flag.String("shared", "auto", "scratchpad round trips: auto (alternate by seed), on, off")
	watchdog := flag.Uint64("watchdog", 0, "cycles without a retire before the watchdog fires (0 derives the limit from DRAM latency and MSHR depth)")
	chaosSpec := flag.String("chaos", "", "inject faults: seed,rate,kinds — the seed is offset per run so every program sees distinct faults")
	out := flag.String("out", "", "write minimized failing seeds as JSON to this file")
	verbose := flag.Bool("v", false, "log every seed")
	flag.Parse()

	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: wirfuzz [-start N] [-n N] [-model M] [-chaos seed,rate,kinds] [-out FILE]")
		os.Exit(exitUsage)
	}
	m, err := config.ParseModel(*modelName)
	usageCheck(err)
	if *n <= 0 || *length <= 0 {
		usageCheck(fmt.Errorf("wirfuzz: -n and -len must be positive"))
	}
	switch *shared {
	case "auto", "on", "off":
	default:
		usageCheck(fmt.Errorf("wirfuzz: -shared must be auto, on, or off"))
	}
	sw := &sweep{
		model: m, modelName: *modelName, sms: *sms, length: *length,
		shared: *shared, watchdog: *watchdog, verbose: *verbose,
	}
	if *chaosSpec != "" {
		inj, err := chaos.Parse(*chaosSpec)
		usageCheck(err)
		sw.chaosSpec = *chaosSpec
		sw.chaosSeed = inj.Seed
		sw.chaosRest = (*chaosSpec)[strings.Index(*chaosSpec, ",")+1:]
	}

	var failures []failure
	for seed := *start; seed < *start+int64(*n); seed++ {
		err := sw.runOne(seed, sw.length)
		if err == nil {
			if sw.verbose {
				fmt.Fprintf(os.Stderr, "wirfuzz: seed %d ok\n", seed)
			}
			continue
		}
		minLen, minErr := sw.minimize(seed)
		if minErr != nil {
			err = minErr
		}
		f := failure{
			Seed: seed, Len: minLen, Model: sw.modelName,
			Shared: sw.sharedFor(seed), Chaos: sw.chaosFor(seed),
			Error: err.Error(),
			Repro: fmt.Sprintf("wirfuzz -start %d -n 1 -len %d -model %s -shared %s -watchdog %d",
				seed, minLen, sw.modelName, onOff(sw.sharedFor(seed)), sw.watchdog),
		}
		if f.Chaos != "" {
			f.Repro += " -chaos " + f.Chaos
		}
		failures = append(failures, f)
		fmt.Fprintf(os.Stderr, "wirfuzz: seed %d FAILED (minimized to len %d): %v\n", seed, minLen, err)
	}

	if *out != "" {
		writeArtifact(*out, failures)
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "wirfuzz: %d of %d seeds failed\n", len(failures), *n)
		os.Exit(exitFault)
	}
	fmt.Fprintf(os.Stderr, "wirfuzz: %d seeds clean (model %s, start %d)\n", *n, sw.modelName, *start)
}

// sharedFor resolves the scratchpad setting for one seed. Auto alternates so
// half the sweep exercises barriers and shared-memory checking.
func (sw *sweep) sharedFor(seed int64) bool {
	switch sw.shared {
	case "on":
		return true
	case "off":
		return false
	}
	return seed%2 == 1
}

// chaosFor renders the per-seed chaos spec ("" when chaos is off). Offsetting
// the configured seed by the program seed gives every run a distinct — but
// reproducible — fault sequence.
func (sw *sweep) chaosFor(seed int64) string {
	if sw.chaosSpec == "" {
		return ""
	}
	return fmt.Sprintf("%d,%s", sw.chaosSeed+seed, sw.chaosRest)
}

// injFor builds the per-seed injector (nil when chaos is off).
func (sw *sweep) injFor(seed int64) *chaos.Injector {
	spec := sw.chaosFor(seed)
	if spec == "" {
		return nil
	}
	inj, err := chaos.Parse(spec)
	if err != nil { // validated at startup; re-derivation cannot fail
		fatal(err)
	}
	return inj
}

// runOne executes one seed at one program length and judges it against the
// robustness contract.
func (sw *sweep) runOne(seed int64, length int) error {
	o := fuzz.DefaultOptions(seed)
	o.Len = length
	o.WithShared = sw.sharedFor(seed)
	inj := sw.injFor(seed)
	res, err := fuzz.Execute(o, fuzz.RunConfig{
		Model: sw.model, NumSMs: sw.sms, Watchdog: sw.watchdog,
		Oracle: true, Chaos: inj,
	})
	if err != nil {
		fatal(err) // setup errors are driver bugs, not seed failures
	}
	var ref []uint32
	if inj == nil && sw.model != config.Base {
		// Clean runs must also agree bit-for-bit with the Base model.
		rres, err := fuzz.Execute(o, fuzz.RunConfig{Model: config.Base, NumSMs: sw.sms, Watchdog: sw.watchdog, Oracle: true})
		if err != nil {
			fatal(err)
		}
		if rerr := fuzz.Check(rres, nil, nil); rerr != nil {
			return fmt.Errorf("base reference failed: %w", rerr)
		}
		ref = rres.Output
	}
	return fuzz.Check(res, ref, inj)
}

// minimize finds the smallest program length at which the seed still fails,
// returning it with the error observed there. Generation is deterministic in
// (seed, len), so scanning up from 1 finds the least failing prefix shape.
func (sw *sweep) minimize(seed int64) (int, error) {
	for l := 1; l < sw.length; l++ {
		if err := sw.runOne(seed, l); err != nil {
			return l, err
		}
	}
	return sw.length, nil
}

func writeArtifact(path string, failures []failure) {
	f, err := os.Create(path)
	fatal(err)
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if failures == nil {
		failures = []failure{}
	}
	fatal(enc.Encode(failures))
	fatal(f.Close())
	fmt.Fprintf(os.Stderr, "wirfuzz: wrote %d failure(s) to %s\n", len(failures), path)
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "wirfuzz:", err)
		os.Exit(exitRuntime)
	}
}

func usageCheck(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "wirfuzz:", err)
		os.Exit(exitUsage)
	}
}
