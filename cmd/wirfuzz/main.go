// Command wirfuzz sweeps the random-program generator over a seed range with
// the golden-model oracle, the deadlock watchdog, and (optionally) the chaos
// fault injector attached. Without chaos, every seed must run cleanly: zero
// oracle divergences, invariants intact, and — when the model under test is
// not Base — an output image bit-identical to the Base model's. With chaos,
// every seed must satisfy the robustness contract instead (value-changing
// faults are detected, wedges trip the watchdog, nothing corrupts silently).
//
// Failing seeds are minimized in two phases — the smallest failing -len
// prefix, then muting individual top-level instruction slots (fuzz.Minimize),
// which shrinks multi-instruction failures below the prefix-length floor —
// and written as a JSON artifact for CI to upload. A minimized skip set
// replays with -skip.
//
// Usage:
//
//	wirfuzz [-start N] [-n N] [-model RLPV] [-sms N] [-len N] [-skip 1,3,9]
//	        [-shared auto|on|off] [-watchdog N] [-chaos seed,rate,kinds]
//	        [-out failures.json] [-v]
//	        [-serve-sweep ADDR [-shard N] [-dist-chaos seed,rate,kinds]]
//	        [-worker URL [-worker-name NAME]]
//
// -serve-sweep distributes the sweep: seed shards are leased to wirfuzz
// -worker processes and the merged failure artifact is byte-identical to the
// serial sweep (see docs/DISTRIBUTED.md).
//
// Exit status: 0 when every seed passes, 1 on runtime errors, 2 on usage
// errors, 3 when any seed fails, 4 when interrupted by SIGINT/SIGTERM (partial
// artifacts flushed).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/wirsim/wir/internal/chaos"
	"github.com/wirsim/wir/internal/config"
	"github.com/wirsim/wir/internal/fuzz"
	"github.com/wirsim/wir/internal/graceful"
)

const (
	exitOK      = 0
	exitRuntime = 1
	exitUsage   = 2
	exitFault   = 3
	// exitInterrupted (4) is produced by the graceful SIGINT/SIGTERM handler
	// after flushing partial artifacts; see internal/graceful.
	exitInterrupted = graceful.ExitCode
)

// failure is one minimized failing seed, serialized into the -out artifact.
type failure struct {
	Seed   int64  `json:"seed"`
	Len    int    `json:"len"`            // smallest failing program length
	Skip   []int  `json:"skip,omitempty"` // muted slots within that length
	Live   int    `json:"live"`           // instructions actually emitted
	Model  string `json:"model"`
	Shared bool   `json:"shared"`
	Chaos  string `json:"chaos,omitempty"`
	Error  string `json:"error"`
	Repro  string `json:"repro"`
}

// sweep holds the resolved command line.
type sweep struct {
	model     config.Model
	modelName string
	sms       int
	length    int
	skip      []int
	shared    string // auto, on, off
	watchdog  uint64
	chaosSpec string // original spec; per-seed injectors re-derive the seed
	chaosRest string // "rate,kinds" tail of the spec
	chaosSeed int64
	verbose   bool

	// guard (nil in dist workers) protects failures against the interrupt
	// flusher, which writes the partial artifact on SIGINT/SIGTERM.
	guard    *graceful.Guard
	failures []failure
}

func main() {
	start := flag.Int64("start", 0, "first seed")
	n := flag.Int("n", 200, "number of seeds")
	modelName := flag.String("model", "RLPV", "machine model under test")
	sms := flag.Int("sms", 2, "number of simulated SMs")
	length := flag.Int("len", 24, "instructions in the generated top-level block")
	skipSpec := flag.String("skip", "", "comma-separated top-level slots to mute (replays a minimized failure)")
	shared := flag.String("shared", "auto", "scratchpad round trips: auto (alternate by seed), on, off")
	watchdog := flag.Uint64("watchdog", 0, "cycles without a retire before the watchdog fires (0 derives the limit from DRAM latency and MSHR depth)")
	chaosSpec := flag.String("chaos", "", "inject faults: seed,rate,kinds — the seed is offset per run so every program sees distinct faults")
	out := flag.String("out", "", "write minimized failing seeds as JSON to this file")
	verbose := flag.Bool("v", false, "log every seed")
	serveSweep := flag.String("serve-sweep", "", "listen address (host:port) for a distributed-sweep coordinator; seed shards are farmed to -worker processes, artifact stays byte-identical")
	workerURL := flag.String("worker", "", "run as a sweep worker pulling seed shards from this coordinator URL")
	workerName := flag.String("worker-name", "worker", "worker name for coordinator logs and provenance")
	shardSize := flag.Int64("shard", 25, "with -serve-sweep: seeds per distributed work unit")
	distLease := flag.Duration("dist-lease", 30*time.Second, "with -serve-sweep: lease duration before an unheard-from worker's shard is reclaimed")
	distGrace := flag.Duration("dist-grace", 10*time.Second, "with -serve-sweep: how long to wait for a first worker before degrading to local execution")
	distRetries := flag.Int("dist-retries", 3, "with -serve-sweep: re-dispatches per shard before it falls back to local execution")
	distChaos := flag.String("dist-chaos", "", "with -serve-sweep: dist-level chaos spec seed,rate,kinds (transport faults, distinct from -chaos simulator faults)")
	distJSON := flag.String("dist-json", "", "with -serve-sweep: write the wir-dist/1 coordinator summary to this file")
	distPatience := flag.Duration("dist-patience", 2*time.Minute, "with -worker: give up after the coordinator is unreachable this long")
	flag.Parse()

	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: wirfuzz [-start N] [-n N] [-model M] [-chaos seed,rate,kinds] [-out FILE]")
		os.Exit(exitUsage)
	}
	guard := graceful.New("wirfuzz")
	guard.Watch()
	d := fuzzDist{
		serve: *serveSweep, worker: *workerURL, name: *workerName, shard: *shardSize,
		lease: *distLease, grace: *distGrace, retries: *distRetries,
		chaos: *distChaos, jsonPath: *distJSON, patience: *distPatience,
	}
	if d.worker != "" {
		if d.serve != "" {
			usageCheck(fmt.Errorf("wirfuzz: -worker is exclusive with -serve-sweep"))
		}
		os.Exit(fuzzWorker(d))
	}
	m, err := config.ParseModel(*modelName)
	usageCheck(err)
	if *n <= 0 || *length <= 0 {
		usageCheck(fmt.Errorf("wirfuzz: -n and -len must be positive"))
	}
	switch *shared {
	case "auto", "on", "off":
	default:
		usageCheck(fmt.Errorf("wirfuzz: -shared must be auto, on, or off"))
	}
	skip, err := parseSkip(*skipSpec, *length)
	usageCheck(err)
	if d.serve != "" {
		if len(skip) > 0 {
			usageCheck(fmt.Errorf("wirfuzz: -skip replays one minimized failure; it cannot be combined with -serve-sweep"))
		}
		if d.shard <= 0 {
			usageCheck(fmt.Errorf("wirfuzz: -shard must be positive"))
		}
	}
	sw := &sweep{
		model: m, modelName: *modelName, sms: *sms, length: *length, skip: skip,
		shared: *shared, watchdog: *watchdog, verbose: *verbose,
		guard: guard,
	}
	if *out != "" {
		// On SIGINT/SIGTERM, flush whatever failures exist so a long nightly
		// sweep that gets killed still leaves its evidence behind.
		outPath := *out
		guard.OnInterrupt(func() { writeArtifact(outPath, sw.failures) })
	}
	if *chaosSpec != "" {
		inj, err := chaos.Parse(*chaosSpec)
		usageCheck(err)
		sw.chaosSpec = *chaosSpec
		sw.chaosSeed = inj.Seed
		sw.chaosRest = (*chaosSpec)[strings.Index(*chaosSpec, ",")+1:]
	}

	if d.serve != "" {
		if err := sw.distSweep(d, *start, int64(*n)); err != nil {
			fatal(err)
		}
	} else {
		sw.sweepRange(*start, int64(*n))
	}

	if *out != "" {
		writeArtifact(*out, sw.failures)
	}
	if len(sw.failures) > 0 {
		fmt.Fprintf(os.Stderr, "wirfuzz: %d of %d seeds failed\n", len(sw.failures), *n)
		os.Exit(exitFault)
	}
	fmt.Fprintf(os.Stderr, "wirfuzz: %d seeds clean (model %s, start %d)\n", *n, sw.modelName, *start)
}

// sweepRange runs one contiguous seed range, minimizing and recording every
// failure. It is the unit of distribution: a dist worker executes exactly this
// over its shard, so a sharded sweep accumulates the same failure records —
// in the same order, once shards are merged — as the serial loop.
func (sw *sweep) sweepRange(start, n int64) {
	for seed := start; seed < start+n; seed++ {
		err := sw.run(sw.optionsFor(seed, sw.length, sw.skip), seed)
		if err == nil {
			if sw.verbose {
				fmt.Fprintf(os.Stderr, "wirfuzz: seed %d ok\n", seed)
			}
			continue
		}
		min, minErr := sw.minimize(seed)
		if minErr != nil {
			err = minErr
		}
		f := failure{
			Seed: seed, Len: min.Len, Skip: min.Skip, Live: min.Live(),
			Model:  sw.modelName,
			Shared: sw.sharedFor(seed), Chaos: sw.chaosFor(seed),
			Error: err.Error(),
			Repro: fmt.Sprintf("wirfuzz -start %d -n 1 -len %d -model %s -shared %s -watchdog %d",
				seed, min.Len, sw.modelName, onOff(sw.sharedFor(seed)), sw.watchdog),
		}
		if len(min.Skip) > 0 {
			f.Repro += " -skip " + skipString(min.Skip)
		}
		if f.Chaos != "" {
			f.Repro += " -chaos " + f.Chaos
		}
		sw.record(f)
		fmt.Fprintf(os.Stderr, "wirfuzz: seed %d FAILED (minimized to %d live of len %d): %v\n",
			seed, min.Live(), min.Len, err)
	}
}

// record appends a failure under the interrupt guard, so a partial artifact
// flushed on SIGINT/SIGTERM never contains a half-written record.
func (sw *sweep) record(f failure) {
	sw.guard.Protect(func() { sw.failures = append(sw.failures, f) })
}

// sharedFor resolves the scratchpad setting for one seed. Auto alternates so
// half the sweep exercises barriers and shared-memory checking.
func (sw *sweep) sharedFor(seed int64) bool {
	switch sw.shared {
	case "on":
		return true
	case "off":
		return false
	}
	return seed%2 == 1
}

// chaosFor renders the per-seed chaos spec ("" when chaos is off). Offsetting
// the configured seed by the program seed gives every run a distinct — but
// reproducible — fault sequence.
func (sw *sweep) chaosFor(seed int64) string {
	if sw.chaosSpec == "" {
		return ""
	}
	return fmt.Sprintf("%d,%s", sw.chaosSeed+seed, sw.chaosRest)
}

// injFor builds the per-seed injector (nil when chaos is off).
func (sw *sweep) injFor(seed int64) *chaos.Injector {
	spec := sw.chaosFor(seed)
	if spec == "" {
		return nil
	}
	inj, err := chaos.Parse(spec)
	if err != nil { // validated at startup; re-derivation cannot fail
		fatal(err)
	}
	return inj
}

// optionsFor builds the generator options for one seed.
func (sw *sweep) optionsFor(seed int64, length int, skip []int) fuzz.Options {
	o := fuzz.DefaultOptions(seed)
	o.Len = length
	o.Skip = skip
	o.WithShared = sw.sharedFor(seed)
	return o
}

// run executes one option set and judges it against the robustness contract.
func (sw *sweep) run(o fuzz.Options, seed int64) error {
	inj := sw.injFor(seed)
	res, err := fuzz.Execute(o, fuzz.RunConfig{
		Model: sw.model, NumSMs: sw.sms, Watchdog: sw.watchdog,
		Oracle: true, Chaos: inj,
	})
	if err != nil {
		fatal(err) // setup errors are driver bugs, not seed failures
	}
	var ref []uint32
	if inj == nil && sw.model != config.Base {
		// Clean runs must also agree bit-for-bit with the Base model.
		rres, err := fuzz.Execute(o, fuzz.RunConfig{Model: config.Base, NumSMs: sw.sms, Watchdog: sw.watchdog, Oracle: true})
		if err != nil {
			fatal(err)
		}
		if rerr := fuzz.Check(rres, nil, nil); rerr != nil {
			return fmt.Errorf("base reference failed: %w", rerr)
		}
		ref = rres.Output
	}
	return fuzz.Check(res, ref, inj)
}

// minimize shrinks a failing seed — the smallest failing prefix length, then
// per-slot muting — and returns the minimal option set with the error
// observed there.
func (sw *sweep) minimize(seed int64) (fuzz.Options, error) {
	var lastErr error
	min := fuzz.Minimize(sw.optionsFor(seed, sw.length, sw.skip), func(o fuzz.Options) bool {
		if err := sw.run(o, seed); err != nil {
			lastErr = err
			return true
		}
		return false
	})
	return min, lastErr
}

// parseSkip parses the -skip slot list.
func parseSkip(spec string, length int) ([]int, error) {
	if spec == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(spec, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("wirfuzz: bad -skip entry %q: %v", part, err)
		}
		if v < 0 || v >= length {
			return nil, fmt.Errorf("wirfuzz: -skip slot %d outside 0..%d", v, length-1)
		}
		out = append(out, v)
	}
	sort.Ints(out)
	return out, nil
}

// skipString renders a skip set for a repro command line.
func skipString(skip []int) string {
	parts := make([]string, len(skip))
	for i, s := range skip {
		parts[i] = strconv.Itoa(s)
	}
	return strings.Join(parts, ",")
}

func writeArtifact(path string, failures []failure) {
	f, err := os.Create(path)
	fatal(err)
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if failures == nil {
		failures = []failure{}
	}
	fatal(enc.Encode(failures))
	fatal(f.Close())
	fmt.Fprintf(os.Stderr, "wirfuzz: wrote %d failure(s) to %s\n", len(failures), path)
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "wirfuzz:", err)
		os.Exit(exitRuntime)
	}
}

func usageCheck(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "wirfuzz:", err)
		os.Exit(exitUsage)
	}
}
