// wirserve is the simulation-as-a-service daemon: a persistent process that
// accepts machine configs, client kernels, and named sweep experiments over a
// REST/JSON job API (wir-serve/1), executes them through the harness on a
// bounded worker pool, and remembers every result in a disk-backed
// content-addressed store — so any configuration that has ever been simulated,
// by this process or a previous one, is answered without simulating again.
//
//	wirserve -addr :8177 -store /var/lib/wirserve &
//	curl -d '{"kind":"run","bench":"KM"}' localhost:8177/v1/jobs
//
// On SIGINT/SIGTERM the server drains: running jobs finish, the queued
// remainder is persisted next to the store for the next process, and wirserve
// exits with the repo-wide "interrupted" code 4.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"github.com/wirsim/wir/internal/graceful"
	"github.com/wirsim/wir/internal/serve"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		addr     = flag.String("addr", ":8177", "listen address")
		sms      = flag.Int("sms", 15, "default number of SMs for jobs that do not choose")
		workers  = flag.Int("jobs", 2, "concurrent job executions")
		queue    = flag.Int("queue", 256, "max queued jobs before submissions get 503")
		storeDir = flag.String("store", "wirserve-store", "result store directory")
		storeMax = flag.Int64("store-max-bytes", 0, "result store size cap in bytes (0 = unlimited)")
		interval = flag.Uint64("interval", 1000, "default sampler cadence in cycles for run jobs")
		hostprof = flag.Bool("hostprof", false, "aggregate a host-side profile across sweep simulations (GET /v1/hostprof)")
		distOn   = flag.Bool("dist", false, "embed a wir-dist/1 coordinator under /dist/ and fan sweep misses out to workers")
		lease    = flag.Duration("dist-lease", 15*time.Second, "dist lease duration")
		grace    = flag.Duration("dist-grace", 10*time.Second, "dist grace before local degradation")
		retries  = flag.Int("dist-retries", 3, "dist re-dispatches before a unit runs locally")
		quiet    = flag.Bool("q", false, "suppress progress logging")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "wirserve: unexpected arguments %q\n", flag.Args())
		return 2
	}

	logf := log.New(os.Stderr, "", log.LstdFlags).Printf
	if *quiet {
		logf = nil
	}
	opts := serve.Options{
		SMs:           *sms,
		Workers:       *workers,
		QueueDepth:    *queue,
		StoreDir:      *storeDir,
		StoreMaxBytes: *storeMax,
		Interval:      *interval,
		HostProf:      *hostprof,
		Logf:          logf,
	}
	if *distOn {
		opts.Dist = &serve.DistOptions{Lease: *lease, Grace: *grace, Retries: *retries}
	}
	srv, err := serve.New(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wirserve: %v\n", err)
		return 1
	}

	guard := graceful.New("wirserve")
	guard.OnInterrupt(srv.Drain)
	guard.Watch()

	if logf != nil {
		logf("wirserve: %s listening on %s (store %s, %d workers)", serve.Schema, *addr, *storeDir, *workers)
	}
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fmt.Fprintf(os.Stderr, "wirserve: %v\n", err)
		return 1
	}
	return 0
}
