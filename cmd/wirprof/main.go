// Command wirprof runs the repeated-computation profiler (paper Figure 2)
// on one benchmark or the whole suite, or — with -hotspots — runs the full
// machine model and reports the per-PC attribution hotspots. With
// -lost-reuse, the reuse profiler's shadow tables annotate the hotspots and
// the table is ranked by lost reuse: PCs where an infinite-capacity reuse
// buffer would have bypassed many more instructions than the real one did.
//
// Usage:
//
//	wirprof [-sms N] [-json|-csv] [benchmark-abbr]
//	wirprof -hotspots 10 [-model RLPV] [-json|-csv] KM
//	wirprof -lost-reuse [-hotspots 10] [-model RLPV] KM
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"

	"github.com/wirsim/wir/internal/attr"
	"github.com/wirsim/wir/internal/bench"
	"github.com/wirsim/wir/internal/config"
	"github.com/wirsim/wir/internal/gpu"
	"github.com/wirsim/wir/internal/metrics"
	"github.com/wirsim/wir/internal/profile"
	"github.com/wirsim/wir/internal/reuseprof"
)

// profRow is one Figure-2 profile line in machine-readable form.
type profRow struct {
	App          string  `json:"app"`
	Repeated     float64 `json:"repeated"`
	Repeated10x  float64 `json:"repeated_10x"`
	Instructions uint64  `json:"instructions"`
}

func main() {
	sms := flag.Int("sms", 15, "number of simulated SMs")
	jsonOut := flag.Bool("json", false, "emit JSON instead of the text table")
	csvOut := flag.Bool("csv", false, "emit CSV instead of the text table")
	hotspots := flag.Int("hotspots", 0, "run the machine model and report the top-N per-PC hotspots instead of the Figure-2 profile")
	lostReuse := flag.Bool("lost-reuse", false, "rank hotspots by lost reuse (achievable minus achieved, from the reuse profiler's shadow tables); implies -hotspots 10 when unset")
	modelName := flag.String("model", "RLPV", "machine model for -hotspots runs")
	flag.Parse()

	if *jsonOut && *csvOut {
		fmt.Fprintln(os.Stderr, "wirprof: -json and -csv are mutually exclusive")
		os.Exit(2)
	}
	targets := bench.All()
	if flag.NArg() == 1 {
		b, err := bench.ByAbbr(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "wirprof:", err)
			os.Exit(1)
		}
		targets = []*bench.Benchmark{b}
	} else if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "usage: wirprof [-sms N] [-json|-csv] [-hotspots N] [benchmark-abbr]")
		os.Exit(2)
	}

	if *lostReuse && *hotspots <= 0 {
		*hotspots = 10
	}
	if *hotspots > 0 {
		runHotspots(targets, *sms, *modelName, *hotspots, *lostReuse, *jsonOut, *csvOut)
		return
	}

	var rows []profRow
	for _, bm := range targets {
		cfg := config.Default(config.Base)
		cfg.NumSMs = *sms
		g, err := gpu.New(cfg)
		fatal(err)
		p := profile.New()
		g.SetProfileHook(p.Observe)
		w, err := bm.Setup(g)
		fatal(err)
		_, err = w.Run(g)
		fatal(err)
		rows = append(rows, profRow{
			App:          bm.Abbr,
			Repeated:     p.RepeatedRate(),
			Repeated10x:  p.Repeated10Rate(),
			Instructions: p.Total(),
		})
	}

	switch {
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		fatal(enc.Encode(rows))
	case *csvOut:
		w := csv.NewWriter(os.Stdout)
		fatal(w.Write([]string{"app", "repeated", "repeated_10x", "instructions"}))
		for _, r := range rows {
			fatal(w.Write([]string{
				r.App,
				strconv.FormatFloat(r.Repeated, 'f', 4, 64),
				strconv.FormatFloat(r.Repeated10x, 'f', 4, 64),
				strconv.FormatUint(r.Instructions, 10),
			}))
		}
		w.Flush()
		fatal(w.Error())
	default:
		fmt.Printf("%-4s %10s %14s %12s\n", "App", "repeated", "repeated>=10x", "instructions")
		var sum, sum10 float64
		for _, r := range rows {
			fmt.Printf("%-4s %9.1f%% %13.1f%% %12d\n",
				r.App, 100*r.Repeated, 100*r.Repeated10x, r.Instructions)
			sum += r.Repeated
			sum10 += r.Repeated10x
		}
		if len(rows) > 1 {
			n := float64(len(rows))
			fmt.Printf("%-4s %9.1f%% %13.1f%%   (paper: 31.4%% / 16.0%%)\n", "AVG", 100*sum/n, 100*sum10/n)
		}
	}
}

// runHotspots runs each target under the requested machine model with the
// attribution collector attached and reports the top-N per-PC records. With
// lostReuse, the reuse profiler rides along, its shadow tables annotate the
// records, and the table ranks by lost reuse instead of simulated cycles.
func runHotspots(targets []*bench.Benchmark, sms int, modelName string, n int, lostReuse, jsonOut, csvOut bool) {
	m, err := config.ParseModel(modelName)
	fatal(err)
	var all []metrics.Hotspot
	for _, bm := range targets {
		cfg := config.Default(m)
		cfg.NumSMs = sms
		g, err := gpu.New(cfg)
		fatal(err)
		c := attr.NewCollector()
		g.SetAttribution(c)
		var rp *reuseprof.Collector
		if lostReuse {
			rp = g.NewReuseProf()
			g.SetReuseProf(rp)
		}
		w, err := bm.Setup(g)
		fatal(err)
		_, err = w.Run(g)
		fatal(err)
		var hs []metrics.Hotspot
		if lostReuse {
			// Rank over every PC (the cycle-ranked top-N could miss the worst
			// lost-reuse sites), then cut to n after the lost-reuse sort.
			hs = c.Hotspots(0)
			rp.AnnotateHotspots(hs)
			reuseprof.SortByLostReuse(hs)
			if len(hs) > n {
				hs = hs[:n]
			}
		} else {
			hs = c.Hotspots(n)
		}
		if len(targets) > 1 && !jsonOut && !csvOut {
			fmt.Printf("%s (%s)\n", bm.Name, bm.Abbr)
			writeHotspots(os.Stdout, hs, lostReuse)
			fmt.Println()
		}
		all = append(all, hs...)
	}

	switch {
	case jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		fatal(enc.Encode(all))
	case csvOut:
		w := csv.NewWriter(os.Stdout)
		header := []string{
			"kernel", "pc", "op", "issued", "bypassed", "reuse_hits", "reuse_misses",
			"vsb_false_pos", "dummy_movs", "bank_retries", "cycles", "energy_pj", "stall_cycles",
		}
		if lostReuse {
			header = append(header, "shadow_hits", "lost_reuse")
		}
		fatal(w.Write(header))
		for _, h := range all {
			row := []string{
				h.Kernel,
				strconv.Itoa(h.PC),
				h.Op,
				strconv.FormatUint(h.Issued, 10),
				strconv.FormatUint(h.Bypassed, 10),
				strconv.FormatUint(h.ReuseHits, 10),
				strconv.FormatUint(h.ReuseMisses, 10),
				strconv.FormatUint(h.VSBFalsePos, 10),
				strconv.FormatUint(h.DummyMovs, 10),
				strconv.FormatUint(h.BankRetries, 10),
				strconv.FormatUint(h.Cycles, 10),
				strconv.FormatFloat(h.EnergyPJ, 'f', 0, 64),
				strconv.FormatUint(h.StallCycles, 10),
			}
			if lostReuse {
				row = append(row,
					strconv.FormatUint(h.ShadowHits, 10),
					strconv.FormatUint(h.LostReuse, 10))
			}
			fatal(w.Write(row))
		}
		w.Flush()
		fatal(w.Error())
	default:
		if len(targets) == 1 {
			writeHotspots(os.Stdout, all, lostReuse)
		}
	}
}

// writeHotspots renders a hotspot slice in the mode's table format.
func writeHotspots(w *os.File, hs []metrics.Hotspot, lostReuse bool) {
	if lostReuse {
		fatal(reuseprof.WriteLostHotspots(w, hs))
		return
	}
	attr.WriteHotspots(w, hs)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "wirprof:", err)
		os.Exit(1)
	}
}
