// Command wirprof runs the repeated-computation profiler (paper Figure 2)
// on one benchmark or the whole suite.
//
// Usage:
//
//	wirprof [-sms N] [benchmark-abbr]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/wirsim/wir/internal/bench"
	"github.com/wirsim/wir/internal/config"
	"github.com/wirsim/wir/internal/gpu"
	"github.com/wirsim/wir/internal/profile"
)

func main() {
	sms := flag.Int("sms", 15, "number of simulated SMs")
	flag.Parse()

	targets := bench.All()
	if flag.NArg() == 1 {
		b, err := bench.ByAbbr(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "wirprof:", err)
			os.Exit(1)
		}
		targets = []*bench.Benchmark{b}
	}
	fmt.Printf("%-4s %10s %14s %12s\n", "App", "repeated", "repeated>=10x", "instructions")
	var sum, sum10 float64
	for _, bm := range targets {
		cfg := config.Default(config.Base)
		cfg.NumSMs = *sms
		g, err := gpu.New(cfg)
		fatal(err)
		p := profile.New()
		g.SetProfileHook(p.Observe)
		w, err := bm.Setup(g)
		fatal(err)
		_, err = w.Run(g)
		fatal(err)
		fmt.Printf("%-4s %9.1f%% %13.1f%% %12d\n",
			bm.Abbr, 100*p.RepeatedRate(), 100*p.Repeated10Rate(), p.Total())
		sum += p.RepeatedRate()
		sum10 += p.Repeated10Rate()
	}
	if len(targets) > 1 {
		n := float64(len(targets))
		fmt.Printf("%-4s %9.1f%% %13.1f%%   (paper: 31.4%% / 16.0%%)\n", "AVG", 100*sum/n, 100*sum10/n)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "wirprof:", err)
		os.Exit(1)
	}
}
