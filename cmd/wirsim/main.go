// Command wirsim runs one benchmark under one machine model and prints its
// statistics and energy breakdown.
//
// Usage:
//
//	wirsim [-sms N] [-model RLPV] [-list] [-interval N] [-metrics FILE]
//	       [-stats text|json] [-trace-json FILE] [-serve :addr]
//	       [-pprof FILE] [-perfetto FILE] [-hotspots N] <benchmark-abbr>
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/wirsim/wir/internal/attr"
	"github.com/wirsim/wir/internal/bench"
	"github.com/wirsim/wir/internal/config"
	"github.com/wirsim/wir/internal/energy"
	"github.com/wirsim/wir/internal/gpu"
	"github.com/wirsim/wir/internal/metrics"
	"github.com/wirsim/wir/internal/perfetto"
	"github.com/wirsim/wir/internal/trace"
)

func main() {
	sms := flag.Int("sms", 15, "number of simulated SMs")
	modelName := flag.String("model", "RLPV", "machine model (Base, R, RL, RLP, RLPV, RPV, RLPVc, NoVSB, Affine, Affine+RLPV)")
	list := flag.Bool("list", false, "list benchmarks and exit")
	traceN := flag.Int("trace", 0, "print the first N pipeline events")
	traceJSON := flag.String("trace-json", "", "write every pipeline event as JSONL to this file")
	disasm := flag.Bool("disasm", false, "print each kernel's program listing before running")
	interval := flag.Uint64("interval", 0, "sample the counters every N cycles into an interval time series")
	metricsOut := flag.String("metrics", "", "write the interval time series to this file (JSONL; .csv extension selects CSV)")
	statsMode := flag.String("stats", "text", "final statistics format: text or json")
	serveAddr := flag.String("serve", "", "serve live /metrics (Prometheus text) and /debug/pprof on this address while running")
	pprofOut := flag.String("pprof", "", "write a per-PC attribution profile (gzip'd pprof) of simulated cycles/energy to this file")
	perfettoOut := flag.String("perfetto", "", "write the pipeline trace as Perfetto/Chrome trace-event JSON to this file")
	hotspots := flag.Int("hotspots", 0, "print the top-N per-PC hotspots after the run")
	flag.Parse()

	if *list {
		for _, b := range bench.All() {
			fmt.Printf("%-4s %-12s %s\n", b.Abbr, b.Name, b.Suite)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: wirsim [-sms N] [-model M] <benchmark-abbr>")
		os.Exit(2)
	}
	if *statsMode != "text" && *statsMode != "json" {
		fmt.Fprintln(os.Stderr, "wirsim: -stats must be text or json")
		os.Exit(2)
	}
	abbr := flag.Arg(0)
	bm, err := bench.ByAbbr(abbr)
	fatal(err)
	m, err := config.ParseModel(*modelName)
	fatal(err)

	cfg := config.Default(m)
	cfg.NumSMs = *sms
	g, err := gpu.New(cfg)
	fatal(err)

	// Telemetry: one registry feeds the live endpoint, the interval sampler
	// and the end-of-run report. Attached only when asked for, so plain runs
	// keep the uninstrumented fast path.
	var (
		reg     *metrics.Registry
		ins     *metrics.Instruments
		sampler *metrics.Sampler
	)
	telemetry := *interval > 0 || *metricsOut != "" || *serveAddr != "" || *statsMode == "json"
	if telemetry {
		reg = metrics.NewRegistry()
		ins = metrics.NewInstruments(reg)
		g.SetInstruments(ins)
	}
	if *interval > 0 || *metricsOut != "" {
		if *interval == 0 {
			*interval = 1000 // -metrics without -interval: a sane cadence, not every cycle
		}
		sampler = metrics.NewSampler(*interval)
		sampler.Registry = reg
		g.SetSampler(sampler)
	}
	if *serveAddr != "" {
		metrics.Serve(*serveAddr, reg)
		fmt.Fprintf(os.Stderr, "wirsim: serving /metrics and /debug/pprof on %s\n", *serveAddr)
	}

	// Per-PC attribution feeds the pprof profile, the hotspot table, and the
	// hotspots section of the JSON report. Like the instruments it is opt-in
	// and attached before the run so the sums cover everything.
	var collector *attr.Collector
	if *pprofOut != "" || *hotspots > 0 || *statsMode == "json" {
		collector = attr.NewCollector()
		g.SetAttribution(collector)
	}

	var sinks trace.Multi
	if *traceN > 0 {
		sinks = append(sinks, &trace.Writer{W: os.Stdout, Max: *traceN})
	}
	var jsonSink *trace.JSONWriter
	if *traceJSON != "" {
		f, err := os.Create(*traceJSON)
		fatal(err)
		defer f.Close()
		jsonSink = trace.NewJSONWriter(f)
		sinks = append(sinks, jsonSink)
	}
	var perfettoSink *perfetto.Recorder
	if *perfettoOut != "" {
		perfettoSink = &perfetto.Recorder{}
		sinks = append(sinks, perfettoSink)
	}
	switch len(sinks) {
	case 0:
	case 1:
		g.SetTracer(sinks[0])
	default:
		g.SetTracer(sinks)
	}

	w, err := bm.Setup(g)
	fatal(err)
	if *disasm {
		seen := map[string]bool{}
		for _, l := range w.Launches {
			if !seen[l.Kernel.Name] {
				seen[l.Kernel.Name] = true
				fmt.Print(l.Kernel.Listing())
			}
		}
	}
	cycles, err := w.Run(g)
	fatal(err)
	fatal(g.CheckInvariants())
	g.FlushSampler()
	if jsonSink != nil {
		fatal(jsonSink.Err())
	}

	st := g.Stats()
	coeff := energy.Default45nm()
	eb := energy.Model(&coeff, &st, cfg.NumSMs)

	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		fatal(err)
		if strings.HasSuffix(*metricsOut, ".csv") {
			fatal(sampler.WriteCSV(f))
		} else {
			fatal(sampler.WriteJSONL(f))
		}
		fatal(f.Close())
	}

	if *pprofOut != "" {
		f, err := os.Create(*pprofOut)
		fatal(err)
		fatal(collector.WriteProfile(f, cycles))
		fatal(f.Close())
		fmt.Fprintf(os.Stderr, "wirsim: wrote pprof profile to %s (view: go tool pprof -http=: %s)\n",
			*pprofOut, *pprofOut)
	}
	if *perfettoOut != "" {
		f, err := os.Create(*perfettoOut)
		fatal(err)
		fatal(perfetto.Write(f, perfettoSink.Events))
		fatal(f.Close())
		fmt.Fprintf(os.Stderr, "wirsim: wrote %d trace events to %s (open in ui.perfetto.dev)\n",
			len(perfettoSink.Events), *perfettoOut)
	}

	if *statsMode == "json" {
		rep := metrics.NewReport(bm.Abbr, fmt.Sprint(m), cfg.NumSMs, &st)
		sr := g.StallReport()
		sr.Publish(reg)
		rep.AttachStalls(&sr)
		rep.AttachInstruments(ins)
		rep.RFBankConflicts = g.RFConflictCounts()
		rep.Energy = map[string]float64{"sm": eb.SM() / 1e6, "total": eb.Total() / 1e6}
		n := *hotspots
		if n <= 0 {
			n = 10
		}
		rep.Hotspots = collector.Hotspots(n)
		fatal(rep.WriteJSON(os.Stdout))
		return
	}

	fmt.Printf("%s (%s) on %v, %d SMs\n", bm.Name, bm.Abbr, m, cfg.NumSMs)
	fmt.Printf("cycles                 %d (IPC %.2f per SM)\n", cycles,
		float64(st.Issued)/float64(cycles)/float64(cfg.NumSMs))
	fmt.Printf("instructions issued    %d (%.1f%% FP, %.1f%% control)\n",
		st.Issued, 100*st.FPRate(), 100*float64(st.Control)/float64(st.Issued))
	fmt.Printf("backend executed       %d\n", st.Backend)
	fmt.Printf("reused (bypassed)      %d (%.1f%% of issued; %d via pending-retry)\n",
		st.Bypassed, 100*st.BypassRate(), st.PendingHits)
	fmt.Printf("loads served by reuse  %d\n", st.LoadsReused)
	fmt.Printf("dummy MOVs             %d\n", st.DummyMovs)
	fmt.Printf("VSB                    %d lookups, %.1f%% hit, %d false positives\n",
		st.VSBLookups, 100*st.VSBHitRate(), st.VSBFalsePos)
	fmt.Printf("verify cache           %d hits / %d verify-reads\n", st.VerifyCHits, st.VerifyReads)
	fmt.Printf("register file          %d reads, %d writes, %d verify-reads, %d retries\n",
		st.RFReads, st.RFWrites, st.RFVerify, st.BankRetries)
	fmt.Printf("register utilization   avg %.0f, peak %d (of %d)\n",
		st.AvgRegUtil(), st.RegUtilPeak, cfg.PhysRegsPerSM)
	fmt.Printf("L1D                    %d accesses, %.1f%% miss\n", st.L1DAccesses, 100*st.L1DMissRate())
	fmt.Printf("L2 / DRAM              %d / %d accesses\n", st.L2Accesses, st.DRAMAccesses)
	fmt.Printf("energy (uJ)            SM %.2f, total %.2f\n", eb.SM()/1e6, eb.Total()/1e6)
	if telemetry {
		sr := g.StallReport()
		fmt.Printf("issue slots            %d cycles, %.1f%% issued\n",
			sr.SchedSlotCycles, 100*float64(sr.IssueCycles)/float64(sr.SchedSlotCycles))
		fr := sr.Fractions()
		names := metrics.StallNames()
		line := "stalls                "
		for _, n := range names {
			if fr[n] > 0.001 {
				line += fmt.Sprintf(" %s %.1f%%", n, 100*fr[n])
			}
		}
		fmt.Println(line)
	}
	if sampler != nil {
		fmt.Printf("intervals recorded     %d (every %d cycles)\n", len(sampler.Samples()), sampler.Every)
	}
	if *hotspots > 0 {
		fmt.Printf("\ntop %d hotspots by simulated cycles\n", *hotspots)
		attr.WriteHotspots(os.Stdout, collector.Hotspots(*hotspots))
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "wirsim:", err)
		os.Exit(1)
	}
}
