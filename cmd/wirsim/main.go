// Command wirsim runs one benchmark under one machine model and prints its
// statistics and energy breakdown.
//
// Usage:
//
//	wirsim [-sms N] [-model RLPV] [-parallel] [-dense] [-list] [-interval N] [-metrics FILE]
//	       [-stats text|json] [-trace-json FILE] [-serve :addr] [-profile-contention]
//	       [-pprof FILE] [-hostprof FILE] [-hostprof-json FILE]
//	       [-reuseprof] [-reuseprof-json FILE]
//	       [-perfetto FILE] [-hotspots N]
//	       [-oracle] [-watchdog N] [-audit] [-chaos seed,rate,kinds] <benchmark-abbr>
//
// Exit status: 0 on success, 1 on runtime errors (I/O, setup), 2 on usage
// errors, 3 when the run itself is judged bad — an oracle divergence, an
// invariant violation (end of run or, with -audit, at a kernel boundary), or
// a watchdog firing.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"github.com/wirsim/wir/internal/attr"
	"github.com/wirsim/wir/internal/bench"
	"github.com/wirsim/wir/internal/chaos"
	"github.com/wirsim/wir/internal/config"
	"github.com/wirsim/wir/internal/energy"
	"github.com/wirsim/wir/internal/gpu"
	"github.com/wirsim/wir/internal/harness"
	"github.com/wirsim/wir/internal/hostprof"
	"github.com/wirsim/wir/internal/mem"
	"github.com/wirsim/wir/internal/metrics"
	"github.com/wirsim/wir/internal/oracle"
	"github.com/wirsim/wir/internal/perfetto"
	"github.com/wirsim/wir/internal/reuseprof"
	"github.com/wirsim/wir/internal/trace"
)

// Exit codes (documented in docs/ROBUSTNESS.md; wirfuzz and wirdrift use the
// same taxonomy).
const (
	exitOK      = 0
	exitRuntime = 1
	exitUsage   = 2
	exitFault   = 3
)

func main() {
	sms := flag.Int("sms", 15, "number of simulated SMs")
	modelName := flag.String("model", "RLPV", "machine model (Base, R, RL, RLP, RLPV, RPV, RLPVc, NoVSB, Affine, Affine+RLPV)")
	list := flag.Bool("list", false, "list benchmarks and exit")
	traceN := flag.Int("trace", 0, "print the first N pipeline events")
	traceJSON := flag.String("trace-json", "", "write every pipeline event as JSONL to this file")
	disasm := flag.Bool("disasm", false, "print each kernel's program listing before running")
	interval := flag.Uint64("interval", 0, "sample the counters every N cycles into an interval time series")
	metricsOut := flag.String("metrics", "", "write the interval time series to this file (JSONL; .csv extension selects CSV)")
	statsMode := flag.String("stats", "text", "final statistics format: text or json")
	serveAddr := flag.String("serve", "", "serve live /metrics (Prometheus text) and /debug/pprof on this address while running")
	pprofOut := flag.String("pprof", "", "write a per-PC attribution profile (gzip'd pprof) of simulated cycles/energy to this file")
	hostprofOut := flag.String("hostprof", "", "write a host profile (gzip'd pprof) of real simulator wall time per simulation phase to this file")
	hostprofJSON := flag.String("hostprof-json", "", "write the wir-hostprof/1 report (phase timings, allocation, quiescence/skip-opportunity) to this file")
	reuseprofFlag := flag.Bool("reuseprof", false, "attach the decision-level reuse profiler and print a miss-taxonomy/headroom summary")
	reuseprofJSON := flag.String("reuseprof-json", "", "write the wir-reuse/1 report (miss taxonomy, eviction ledger, shadow headroom) to this file")
	profContention := flag.Bool("profile-contention", false, "with -serve: enable runtime block and mutex profiling so /debug/pprof/{block,mutex} capture -parallel gate contention")
	perfettoOut := flag.String("perfetto", "", "write the pipeline trace as Perfetto/Chrome trace-event JSON to this file")
	hotspots := flag.Int("hotspots", 0, "print the top-N per-PC hotspots after the run")
	useOracle := flag.Bool("oracle", false, "run the golden-model oracle in lockstep and fail on any divergence")
	watchdog := flag.Int64("watchdog", -1, "fail if no instruction retires for N cycles (-1 derives N from DRAM latency and MSHR depth, 0 = absolute backstop only)")
	audit := flag.Bool("audit", false, "run the structural invariant auditors at every kernel boundary, not just end of run")
	parallel := flag.Bool("parallel", false, "step SMs in parallel goroutines (bit-identical to serial; falls back to serial when -chaos, per-PC attribution, or -stats json is active)")
	dense := flag.Bool("dense", false, "disable event-driven stepping: sweep every quiet cycle densely (bit-identical; for A/B and debugging)")
	chaosSpec := flag.String("chaos", "", "inject deterministic faults: seed,rate,kinds (e.g. 1,0.001,all — see docs/ROBUSTNESS.md)")
	flag.Parse()

	if *list {
		for _, b := range bench.All() {
			fmt.Printf("%-4s %-12s %s\n", b.Abbr, b.Name, b.Suite)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: wirsim [-sms N] [-model M] [-oracle] [-watchdog N] [-chaos seed,rate,kinds] <benchmark-abbr>")
		os.Exit(exitUsage)
	}
	if *statsMode != "text" && *statsMode != "json" {
		fmt.Fprintln(os.Stderr, "wirsim: -stats must be text or json")
		os.Exit(exitUsage)
	}
	abbr := flag.Arg(0)
	bm, err := bench.ByAbbr(abbr)
	usageCheck(err)
	m, err := config.ParseModel(*modelName)
	usageCheck(err)
	var inj *chaos.Injector
	if *chaosSpec != "" {
		inj, err = chaos.Parse(*chaosSpec)
		usageCheck(err)
	}

	cfg := config.Default(m)
	cfg.NumSMs = *sms
	if *watchdog < 0 {
		cfg.WatchdogCycles = mem.AutoWatchdog(&cfg)
	} else {
		cfg.WatchdogCycles = uint64(*watchdog)
	}
	g, err := gpu.New(cfg)
	fatal(err)
	if *audit {
		g.SetLaunchAudit(true)
	}
	g.SetParallel(*parallel)
	g.SetEventDriven(!*dense)

	// Telemetry: one registry feeds the live endpoint, the interval sampler
	// and the end-of-run report. Attached only when asked for, so plain runs
	// keep the uninstrumented fast path.
	var (
		reg     *metrics.Registry
		ins     *metrics.Instruments
		sampler *metrics.Sampler
	)
	telemetry := *interval > 0 || *metricsOut != "" || *serveAddr != "" || *statsMode == "json"
	if telemetry {
		reg = metrics.NewRegistry()
		ins = metrics.NewInstruments(reg)
		g.SetInstruments(ins)
	}
	if *interval > 0 || *metricsOut != "" {
		if *interval == 0 {
			*interval = 1000 // -metrics without -interval: a sane cadence, not every cycle
		}
		sampler = metrics.NewSampler(*interval)
		sampler.Registry = reg
		g.SetSampler(sampler)
	}
	if *profContention {
		// Rate 1 records every blocking event; the simulator's contention
		// points (the parallel gate chain, hook buffering) are few enough
		// that full sampling stays affordable and the profiles stay exact.
		runtime.SetBlockProfileRate(1)
		runtime.SetMutexProfileFraction(1)
		if *serveAddr == "" {
			fmt.Fprintln(os.Stderr, "wirsim: -profile-contention without -serve: profiles are collected but unreachable; add -serve to scrape /debug/pprof/{block,mutex}")
		}
	}
	if *serveAddr != "" {
		metrics.Serve(*serveAddr, reg)
		fmt.Fprintf(os.Stderr, "wirsim: serving /metrics and /debug/pprof on %s\n", *serveAddr)
	}

	// The host profiler watches the simulator itself (real wall time per
	// simulation phase, allocation, quiescence). Opt-in like the rest of the
	// telemetry; with neither flag set the SMs keep the unprofiled Tick.
	var hostCollector *hostprof.Collector
	if *hostprofOut != "" || *hostprofJSON != "" {
		hostCollector = g.NewHostProf()
		g.SetHostProf(hostCollector)
	}

	// The reuse profiler classifies every reuse-buffer/VSB decision and runs
	// the infinite-capacity shadow tables. Like hostprof it is observational
	// only (bit-identical outputs, parallel-legal) and opt-in; -stats json
	// attaches it so the report's derived rates include achieved/achievable.
	var reuseCollector *reuseprof.Collector
	if *reuseprofFlag || *reuseprofJSON != "" || *statsMode == "json" {
		reuseCollector = g.NewReuseProf()
		g.SetReuseProf(reuseCollector)
	}

	// Per-PC attribution feeds the pprof profile, the hotspot table, and the
	// hotspots section of the JSON report. Like the instruments it is opt-in
	// and attached before the run so the sums cover everything.
	var collector *attr.Collector
	if *pprofOut != "" || *hotspots > 0 || *statsMode == "json" {
		collector = attr.NewCollector()
		g.SetAttribution(collector)
	}

	var chk *oracle.Checker
	if *useOracle {
		chk = oracle.New(g.Mem())
		chk.Attr = collector
		oracle.Attach(g, chk)
	}
	if inj != nil {
		g.SetChaos(inj)
	}

	var sinks trace.Multi
	if *traceN > 0 {
		sinks = append(sinks, &trace.Writer{W: os.Stdout, Max: *traceN})
	}
	// The JSONL sink writes through an explicit buffer that is flushed and
	// closed after the run with every error checked: a full disk or broken
	// pipe must fail the run, not silently truncate the trace.
	var (
		jsonSink  *trace.JSONWriter
		traceFile *os.File
		traceBuf  *bufio.Writer
	)
	if *traceJSON != "" {
		traceFile, err = os.Create(*traceJSON)
		fatal(err)
		traceBuf = bufio.NewWriter(traceFile)
		jsonSink = trace.NewJSONWriter(traceBuf)
		sinks = append(sinks, jsonSink)
	}
	var perfettoSink *perfetto.Recorder
	if *perfettoOut != "" {
		perfettoSink = &perfetto.Recorder{}
		sinks = append(sinks, perfettoSink)
	}
	switch len(sinks) {
	case 0:
	case 1:
		g.SetTracer(sinks[0])
	default:
		g.SetTracer(sinks)
	}

	w, err := bm.Setup(g)
	fatal(err)
	if *disasm {
		seen := map[string]bool{}
		for _, l := range w.Launches {
			if !seen[l.Kernel.Name] {
				seen[l.Kernel.Name] = true
				fmt.Print(l.Kernel.Listing())
			}
		}
	}
	cycles, runErr := w.Run(g)

	// Finalize the trace before judging the run: a watchdog diagnosis is
	// exactly when the trace is most wanted.
	g.FlushSampler()
	if jsonSink != nil {
		fatal(jsonSink.Err())
		fatal(traceBuf.Flush())
		fatal(traceFile.Close())
	}
	if inj != nil {
		fmt.Fprintln(os.Stderr, "wirsim:", inj.Summary())
	}

	var we *gpu.WatchdogError
	if errors.As(runErr, &we) {
		fmt.Fprintln(os.Stderr, "wirsim:", we.Error())
		os.Exit(exitFault)
	}
	var ae *gpu.AuditError
	if errors.As(runErr, &ae) {
		fmt.Fprintln(os.Stderr, "wirsim:", ae.Error())
		os.Exit(exitFault)
	}
	fatal(runErr)
	if err := g.CheckInvariants(); err != nil {
		fmt.Fprintln(os.Stderr, "wirsim: invariant violated:", err)
		os.Exit(exitFault)
	}
	if chk != nil {
		chk.CheckMemory()
		if err := chk.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "wirsim:", err)
			os.Exit(exitFault)
		}
		fmt.Fprintln(os.Stderr, "wirsim: oracle: clean (0 divergences)")
	}

	st := g.Stats()
	coeff := energy.Default45nm()
	eb := energy.Model(&coeff, &st, cfg.NumSMs)

	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		fatal(err)
		if strings.HasSuffix(*metricsOut, ".csv") {
			fatal(sampler.WriteCSV(f))
		} else {
			fatal(sampler.WriteJSONL(f))
		}
		fatal(f.Close())
	}

	if *pprofOut != "" {
		f, err := os.Create(*pprofOut)
		fatal(err)
		fatal(collector.WriteProfile(f, cycles))
		fatal(f.Close())
		fmt.Fprintf(os.Stderr, "wirsim: wrote pprof profile to %s (view: go tool pprof -http=: %s)\n",
			*pprofOut, *pprofOut)
	}
	if *hostprofOut != "" {
		f, err := os.Create(*hostprofOut)
		fatal(err)
		fatal(hostCollector.WriteProfile(f))
		fatal(f.Close())
		fmt.Fprintf(os.Stderr, "wirsim: wrote host profile to %s (view: go tool pprof -http=: %s)\n",
			*hostprofOut, *hostprofOut)
	}
	if *hostprofJSON != "" {
		rep := hostCollector.Report()
		f, err := os.Create(*hostprofJSON)
		fatal(err)
		fatal(rep.WriteJSON(f))
		fatal(f.Close())
		fmt.Fprintf(os.Stderr, "wirsim: wrote %s report to %s (skip-opportunity %.1f%%)\n",
			hostprof.Schema, *hostprofJSON, 100*rep.Quiescence.SkipOpportunity)
	}
	if *perfettoOut != "" {
		f, err := os.Create(*perfettoOut)
		fatal(err)
		tevs := perfetto.Convert(perfettoSink.Events)
		if reuseCollector != nil {
			// Counter tracks (reuse-buffer occupancy, rolling hit rate) ride
			// along in the same trace so they line up with pipeline events.
			tevs = append(tevs, reuseCollector.PerfettoCounters()...)
		}
		fatal(perfetto.WriteEvents(f, tevs))
		fatal(f.Close())
		fmt.Fprintf(os.Stderr, "wirsim: wrote %d trace events to %s (open in ui.perfetto.dev)\n",
			len(tevs), *perfettoOut)
	}

	if reuseCollector != nil && reg != nil {
		reuseCollector.Publish(reg)
	}
	if *reuseprofJSON != "" {
		f, err := os.Create(*reuseprofJSON)
		fatal(err)
		fatal(reuseCollector.WriteJSON(f))
		fatal(f.Close())
		fmt.Fprintf(os.Stderr, "wirsim: wrote %s report to %s (achieved/achievable %.1f%%)\n",
			reuseprof.Schema, *reuseprofJSON, 100*reuseCollector.AchievedRatio())
	}

	if *statsMode == "json" {
		rep := metrics.NewReport(bm.Abbr, fmt.Sprint(m), cfg.NumSMs, &st)
		rep.ConfigHash = harness.KeyHash(harness.RunKey(bm.Abbr, m, nil, &cfg))
		sr := g.StallReport()
		sr.Publish(reg)
		rep.AttachStalls(&sr)
		rep.AttachInstruments(ins)
		rep.RFBankConflicts = g.RFConflictCounts()
		rep.Energy = map[string]float64{"sm": eb.SM() / 1e6, "total": eb.Total() / 1e6}
		n := *hotspots
		if n <= 0 {
			n = 10
		}
		rep.Hotspots = collector.Hotspots(n)
		if reuseCollector != nil {
			rep.Derived["reuse_achieved_ratio"] = reuseCollector.AchievedRatio()
			reuseCollector.AnnotateHotspots(rep.Hotspots)
		}
		fatal(rep.WriteJSON(os.Stdout))
		return
	}

	fmt.Printf("%s (%s) on %v, %d SMs\n", bm.Name, bm.Abbr, m, cfg.NumSMs)
	fmt.Printf("cycles                 %d (IPC %.2f per SM)\n", cycles,
		float64(st.Issued)/float64(cycles)/float64(cfg.NumSMs))
	fmt.Printf("instructions issued    %d (%.1f%% FP, %.1f%% control)\n",
		st.Issued, 100*st.FPRate(), 100*float64(st.Control)/float64(st.Issued))
	fmt.Printf("backend executed       %d\n", st.Backend)
	fmt.Printf("reused (bypassed)      %d (%.1f%% of issued; %d via pending-retry)\n",
		st.Bypassed, 100*st.BypassRate(), st.PendingHits)
	fmt.Printf("loads served by reuse  %d\n", st.LoadsReused)
	fmt.Printf("dummy MOVs             %d\n", st.DummyMovs)
	fmt.Printf("VSB                    %d lookups, %.1f%% hit, %d false positives\n",
		st.VSBLookups, 100*st.VSBHitRate(), st.VSBFalsePos)
	fmt.Printf("verify cache           %d hits / %d verify-reads\n", st.VerifyCHits, st.VerifyReads)
	fmt.Printf("register file          %d reads, %d writes, %d verify-reads, %d retries\n",
		st.RFReads, st.RFWrites, st.RFVerify, st.BankRetries)
	fmt.Printf("register utilization   avg %.0f, peak %d (of %d)\n",
		st.AvgRegUtil(), st.RegUtilPeak, cfg.PhysRegsPerSM)
	fmt.Printf("L1D                    %d accesses, %.1f%% miss\n", st.L1DAccesses, 100*st.L1DMissRate())
	fmt.Printf("L2 / DRAM              %d / %d accesses\n", st.L2Accesses, st.DRAMAccesses)
	fmt.Printf("energy (uJ)            SM %.2f, total %.2f\n", eb.SM()/1e6, eb.Total()/1e6)
	if telemetry {
		sr := g.StallReport()
		fmt.Printf("issue slots            %d cycles, %.1f%% issued\n",
			sr.SchedSlotCycles, 100*float64(sr.IssueCycles)/float64(sr.SchedSlotCycles))
		fr := sr.Fractions()
		names := metrics.StallNames()
		line := "stalls                "
		for _, n := range names {
			if fr[n] > 0.001 {
				line += fmt.Sprintf(" %s %.1f%%", n, 100*fr[n])
			}
		}
		fmt.Println(line)
	}
	if sampler != nil {
		fmt.Printf("intervals recorded     %d (every %d cycles)\n", len(sampler.Samples()), sampler.Every)
	}
	if *reuseprofFlag {
		rr := reuseCollector.Report()
		fmt.Printf("reuse taxonomy         ")
		first := true
		for i := reuseprof.Bucket(0); i < reuseprof.NumBuckets; i++ {
			if n := rr.Taxonomy[i.String()]; n > 0 {
				if !first {
					fmt.Print(", ")
				}
				fmt.Printf("%s %d", i, n)
				first = false
			}
		}
		fmt.Println()
		fmt.Printf("reuse headroom         %d achieved / %d achievable (%.1f%%), %d distinct tags\n",
			rr.Shadow.RealHits, rr.Shadow.ShadowHits, 100*rr.Shadow.AchievedRatio, rr.Shadow.DistinctTags)
		fmt.Printf("reuse occupancy        %.1f entries (mean)\n", rr.OccupancyMean)
	}
	if *hotspots > 0 {
		fmt.Printf("\ntop %d hotspots by simulated cycles\n", *hotspots)
		attr.WriteHotspots(os.Stdout, collector.Hotspots(*hotspots))
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "wirsim:", err)
		os.Exit(exitRuntime)
	}
}

// usageCheck fails with the usage exit code: the command line named something
// that does not exist (benchmark, model, chaos spec).
func usageCheck(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "wirsim:", err)
		os.Exit(exitUsage)
	}
}
