// Command wirsim runs one benchmark under one machine model and prints its
// statistics and energy breakdown.
//
// Usage:
//
//	wirsim [-sms N] [-model RLPV] [-list] <benchmark-abbr>
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/wirsim/wir/internal/bench"
	"github.com/wirsim/wir/internal/config"
	"github.com/wirsim/wir/internal/energy"
	"github.com/wirsim/wir/internal/gpu"
	"github.com/wirsim/wir/internal/trace"
)

func main() {
	sms := flag.Int("sms", 15, "number of simulated SMs")
	modelName := flag.String("model", "RLPV", "machine model (Base, R, RL, RLP, RLPV, RPV, RLPVc, NoVSB, Affine, Affine+RLPV)")
	list := flag.Bool("list", false, "list benchmarks and exit")
	traceN := flag.Int("trace", 0, "print the first N pipeline events")
	disasm := flag.Bool("disasm", false, "print each kernel's program listing before running")
	flag.Parse()

	if *list {
		for _, b := range bench.All() {
			fmt.Printf("%-4s %-12s %s\n", b.Abbr, b.Name, b.Suite)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: wirsim [-sms N] [-model M] <benchmark-abbr>")
		os.Exit(2)
	}
	abbr := flag.Arg(0)
	bm, err := bench.ByAbbr(abbr)
	fatal(err)
	m, err := config.ParseModel(*modelName)
	fatal(err)

	cfg := config.Default(m)
	cfg.NumSMs = *sms
	g, err := gpu.New(cfg)
	fatal(err)
	if *traceN > 0 {
		g.SetTracer(&trace.Writer{W: os.Stdout, Max: *traceN})
	}
	w, err := bm.Setup(g)
	fatal(err)
	if *disasm {
		seen := map[string]bool{}
		for _, l := range w.Launches {
			if !seen[l.Kernel.Name] {
				seen[l.Kernel.Name] = true
				fmt.Print(l.Kernel.Listing())
			}
		}
	}
	cycles, err := w.Run(g)
	fatal(err)
	fatal(g.CheckInvariants())

	st := g.Stats()
	coeff := energy.Default45nm()
	eb := energy.Model(&coeff, &st, cfg.NumSMs)

	fmt.Printf("%s (%s) on %v, %d SMs\n", bm.Name, bm.Abbr, m, cfg.NumSMs)
	fmt.Printf("cycles                 %d (IPC %.2f per SM)\n", cycles,
		float64(st.Issued)/float64(cycles)/float64(cfg.NumSMs))
	fmt.Printf("instructions issued    %d (%.1f%% FP, %.1f%% control)\n",
		st.Issued, 100*st.FPRate(), 100*float64(st.Control)/float64(st.Issued))
	fmt.Printf("backend executed       %d\n", st.Backend)
	fmt.Printf("reused (bypassed)      %d (%.1f%% of issued; %d via pending-retry)\n",
		st.Bypassed, 100*st.BypassRate(), st.PendingHits)
	fmt.Printf("loads served by reuse  %d\n", st.LoadsReused)
	fmt.Printf("dummy MOVs             %d\n", st.DummyMovs)
	fmt.Printf("VSB                    %d lookups, %.1f%% hit, %d false positives\n",
		st.VSBLookups, 100*st.VSBHitRate(), st.VSBFalsePos)
	fmt.Printf("verify cache           %d hits / %d verify-reads\n", st.VerifyCHits, st.VerifyReads)
	fmt.Printf("register file          %d reads, %d writes, %d verify-reads, %d retries\n",
		st.RFReads, st.RFWrites, st.RFVerify, st.BankRetries)
	fmt.Printf("register utilization   avg %.0f, peak %d (of %d)\n",
		st.AvgRegUtil(), st.RegUtilPeak, cfg.PhysRegsPerSM)
	fmt.Printf("L1D                    %d accesses, %.1f%% miss\n", st.L1DAccesses, 100*st.L1DMissRate())
	fmt.Printf("L2 / DRAM              %d / %d accesses\n", st.L2Accesses, st.DRAMAccesses)
	fmt.Printf("energy (uJ)            SM %.2f, total %.2f\n", eb.SM()/1e6, eb.Total()/1e6)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "wirsim:", err)
		os.Exit(1)
	}
}
