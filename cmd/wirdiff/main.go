// Command wirdiff runs a benchmark under two machine models and compares the
// per-warp retired-result streams. The WIR design must never change
// architectural results, so any divergence pinpoints a reuse bug down to the
// first affected (launch, block, warp, PC).
//
// Either side can instead be loaded from a JSONL trace recorded with
// `wirsim -trace-json FILE` (-ja / -jb), so a current build can be diffed
// against a stream recorded by an older build or on another machine. Output
// buffers are only compared when both sides run live.
//
// Caveat: kernels with benign data races (e.g. BFS, where concurrent threads
// store the same value and unordered loads may observe either state) can
// legitimately report divergent *load* results between models while output
// buffers stay identical — the output comparison is the authoritative check
// for such workloads.
//
// With -oracle, wirdiff instead replays a recorded retire stream through the
// golden-model oracle: the benchmark's launches are emulated architecturally
// and every recorded (PC, opcode, result-hash) is checked against the
// emulator's expectations — so a stream recorded by an older build or on
// another machine can be audited without re-running that build.
//
// Usage:
//
//	wirdiff [-sms N] [-a Base] [-b RLPV] [-ja trace.jsonl] [-jb trace.jsonl] <benchmark-abbr>
//	wirdiff -oracle -ja trace.jsonl [-sms N] <benchmark-abbr>
//
// Exit status: 0 when the streams (and outputs, if compared) agree, 1 on
// runtime errors, 2 on usage errors, 3 on any divergence — the shared
// taxonomy of wirsim/wirfuzz/wirdrift (docs/ROBUSTNESS.md).
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/wirsim/wir/internal/bench"
	"github.com/wirsim/wir/internal/config"
	"github.com/wirsim/wir/internal/gpu"
	"github.com/wirsim/wir/internal/oracle"
	"github.com/wirsim/wir/internal/sm"
	"github.com/wirsim/wir/internal/trace"
)

const (
	exitOK      = 0
	exitRuntime = 1
	exitUsage   = 2
	exitFault   = 3
)

func main() {
	sms := flag.Int("sms", 4, "number of simulated SMs")
	modelA := flag.String("a", "Base", "first machine model")
	modelB := flag.String("b", "RLPV", "second machine model")
	jsonA := flag.String("ja", "", "load the first retire stream from a recorded JSONL trace instead of running")
	jsonB := flag.String("jb", "", "load the second retire stream from a recorded JSONL trace instead of running")
	oracleMode := flag.Bool("oracle", false, "replay the -ja recorded retire stream through the golden-model oracle")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: wirdiff [-oracle] [-sms N] [-a M1] [-b M2] [-ja FILE] [-jb FILE] <benchmark-abbr>")
		os.Exit(exitUsage)
	}
	abbr := flag.Arg(0)
	bm, err := bench.ByAbbr(abbr)
	fatal(err)
	if *oracleMode {
		if *jsonA == "" {
			fmt.Fprintln(os.Stderr, "wirdiff: -oracle requires -ja FILE (the recorded stream to audit)")
			os.Exit(exitUsage)
		}
		os.Exit(oracleReplay(bm, *jsonA, *sms))
	}

	run := func(name string) (*trace.RetireRecorder, []uint32) {
		m, err := config.ParseModel(name)
		fatal(err)
		cfg := config.Default(m)
		cfg.NumSMs = *sms
		g, err := gpu.New(cfg)
		fatal(err)
		rec := trace.NewRetireRecorder()
		g.SetTracer(rec)
		w, err := bm.Setup(g)
		fatal(err)
		_, err = w.Run(g)
		fatal(err)
		fatal(g.CheckInvariants())
		return rec, g.Mem().Snapshot(w.OutBase, w.OutWords)
	}
	load := func(path string) *trace.RetireRecorder {
		f, err := os.Open(path)
		fatal(err)
		defer f.Close()
		rec, err := trace.ReadRetireRecorder(f)
		fatal(err)
		return rec
	}

	var recA, recB *trace.RetireRecorder
	var outA, outB []uint32
	labelA, labelB := *modelA, *modelB
	if *jsonA != "" {
		recA, labelA = load(*jsonA), *jsonA
	} else {
		recA, outA = run(*modelA)
	}
	if *jsonB != "" {
		recB, labelB = load(*jsonB), *jsonB
	} else {
		recB, outB = run(*modelB)
	}

	exit := exitOK
	if d := trace.Divergence(recA, recB); d != "" {
		fmt.Printf("retire-stream divergence (%s vs %s): %s\n", labelA, labelB, d)
		exit = exitFault // the run is judged bad, not a tool failure
	} else {
		fmt.Printf("retire streams identical across %d warps\n", len(recA.Streams))
	}
	if outA == nil || outB == nil {
		fmt.Println("output buffers not compared (recorded stream on at least one side)")
		os.Exit(exit)
	}
	diffs := 0
	for i := range outA {
		if outA[i] != outB[i] {
			if diffs == 0 {
				fmt.Printf("output mismatch at word %d: %#x vs %#x\n", i, outA[i], outB[i])
			}
			diffs++
		}
	}
	if diffs > 0 {
		fmt.Printf("%d/%d output words differ\n", diffs, len(outA))
		exit = exitFault
	} else {
		fmt.Printf("output buffers identical (%d words)\n", len(outA))
	}
	os.Exit(exit)
}

// oracleReplay audits a recorded retire stream against the golden model. The
// benchmark runs once on the Base model with only the launch hook attached —
// that run contributes nothing to the verdict except the exact block
// decomposition and the launch-time memory images the emulator needs — and
// the recorded stream is then checked against the emulated expectations.
// Returns the process exit code so tests can drive it without os.Exit.
func oracleReplay(bm *bench.Benchmark, path string, sms int) int {
	f, err := os.Open(path)
	fatal(err)
	rec, err := trace.ReadRetireRecorder(f)
	f.Close()
	fatal(err)

	cfg := config.Default(config.Base)
	cfg.NumSMs = sms
	g, err := gpu.New(cfg)
	fatal(err)
	chk := oracle.New(g.Mem())
	g.SetLaunchHook(func(l *gpu.Launch, infos []sm.BlockInfo) { chk.BeginLaunch(infos) })
	w, err := bm.Setup(g)
	fatal(err)
	_, err = w.Run(g)
	fatal(err)

	chk.VerifyRecorded(rec)
	if err := chk.Err(); err != nil {
		fmt.Println(err)
		return exitFault
	}
	events := 0
	for _, s := range rec.Streams {
		events += len(s)
	}
	fmt.Printf("recorded stream matches the golden model: %d warps, %d retire events\n",
		len(rec.Streams), events)
	return exitOK
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "wirdiff:", err)
		os.Exit(exitRuntime)
	}
}
