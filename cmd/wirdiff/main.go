// Command wirdiff runs a benchmark under two machine models and compares the
// per-warp retired-result streams. The WIR design must never change
// architectural results, so any divergence pinpoints a reuse bug down to the
// first affected (launch, block, warp, PC).
//
// Caveat: kernels with benign data races (e.g. BFS, where concurrent threads
// store the same value and unordered loads may observe either state) can
// legitimately report divergent *load* results between models while output
// buffers stay identical — the output comparison is the authoritative check
// for such workloads.
//
// Usage:
//
//	wirdiff [-sms N] [-a Base] [-b RLPV] <benchmark-abbr>
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/wirsim/wir/internal/bench"
	"github.com/wirsim/wir/internal/config"
	"github.com/wirsim/wir/internal/gpu"
	"github.com/wirsim/wir/internal/trace"
)

func main() {
	sms := flag.Int("sms", 4, "number of simulated SMs")
	modelA := flag.String("a", "Base", "first machine model")
	modelB := flag.String("b", "RLPV", "second machine model")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: wirdiff [-sms N] [-a M1] [-b M2] <benchmark-abbr>")
		os.Exit(2)
	}
	abbr := flag.Arg(0)
	bm, err := bench.ByAbbr(abbr)
	fatal(err)
	ma, err := config.ParseModel(*modelA)
	fatal(err)
	mb, err := config.ParseModel(*modelB)
	fatal(err)

	run := func(m config.Model) (*trace.RetireRecorder, []uint32) {
		cfg := config.Default(m)
		cfg.NumSMs = *sms
		g, err := gpu.New(cfg)
		fatal(err)
		rec := trace.NewRetireRecorder()
		g.SetTracer(rec)
		w, err := bm.Setup(g)
		fatal(err)
		_, err = w.Run(g)
		fatal(err)
		fatal(g.CheckInvariants())
		return rec, g.Mem().Snapshot(w.OutBase, w.OutWords)
	}

	recA, outA := run(ma)
	recB, outB := run(mb)

	exit := 0
	if d := trace.Divergence(recA, recB); d != "" {
		fmt.Printf("retire-stream divergence (%v vs %v): %s\n", ma, mb, d)
		exit = 1
	} else {
		fmt.Printf("retire streams identical across %d warps\n", len(recA.Streams))
	}
	diffs := 0
	for i := range outA {
		if outA[i] != outB[i] {
			if diffs == 0 {
				fmt.Printf("output mismatch at word %d: %#x vs %#x\n", i, outA[i], outB[i])
			}
			diffs++
		}
	}
	if diffs > 0 {
		fmt.Printf("%d/%d output words differ\n", diffs, len(outA))
		exit = 1
	} else {
		fmt.Printf("output buffers identical (%d words)\n", len(outA))
	}
	os.Exit(exit)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "wirdiff:", err)
		os.Exit(1)
	}
}
