package main

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"github.com/wirsim/wir/internal/bench"
	"github.com/wirsim/wir/internal/config"
	"github.com/wirsim/wir/internal/gpu"
	"github.com/wirsim/wir/internal/trace"
)

const oracleTestAbbr = "KM"
const oracleTestSMs = 2

// recordRetireStream runs the benchmark live under RLPV and writes its
// retire-only wir-trace/1 stream, standing in for a stream recorded by
// another build.
func recordRetireStream(t *testing.T) []byte {
	t.Helper()
	bm, err := bench.ByAbbr(oracleTestAbbr)
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default(config.RLPV)
	cfg.NumSMs = oracleTestSMs
	g, err := gpu.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	jw := trace.NewJSONWriter(&buf).FilterKinds(trace.KindRetire)
	g.SetTracer(jw)
	w, err := bm.Setup(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(g); err != nil {
		t.Fatal(err)
	}
	if err := jw.Err(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestOracleReplayExitCodes is the -oracle contract: a faithfully recorded
// stream audits clean (exit 0) and a tampered one is judged bad (exit 3).
func TestOracleReplayExitCodes(t *testing.T) {
	stream := recordRetireStream(t)
	bm, err := bench.ByAbbr(oracleTestAbbr)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	good := filepath.Join(dir, "good.jsonl")
	if err := os.WriteFile(good, stream, 0o644); err != nil {
		t.Fatal(err)
	}
	if code := oracleReplay(bm, good, oracleTestSMs); code != exitOK {
		t.Errorf("good recording: exit %d, want %d", code, exitOK)
	}

	// Flip the leading hex digit of every recorded result hash: at least one
	// value-producing instruction must then mismatch the golden model.
	re := regexp.MustCompile(`"result":"([0-9a-f])`)
	tampered := re.ReplaceAllFunc(stream, func(m []byte) []byte {
		out := append([]byte(nil), m...) // m aliases stream; never mutate it
		if out[len(out)-1] == '0' {
			out[len(out)-1] = '1'
		} else {
			out[len(out)-1] = '0'
		}
		return out
	})
	if bytes.Equal(stream, tampered) {
		t.Fatal("tampering changed nothing — no result fields in the recording?")
	}
	bad := filepath.Join(dir, "tampered.jsonl")
	if err := os.WriteFile(bad, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	if code := oracleReplay(bm, bad, oracleTestSMs); code != exitFault {
		t.Errorf("tampered recording: exit %d, want %d", code, exitFault)
	}
}
