// Command wirdrift compares two wir-stats/1 reports and fails when headline
// derived metrics drift beyond a relative tolerance. CI uses it to gate the
// benchmark smoke run against the committed baseline:
//
//	wirdrift -max 0.15 BENCH_baseline.json BENCH_ci.json
//
// With -speed, the inputs are wir-speed/1 throughput reports instead
// (wirbench -speed), and the gate fails when simulated cycles-per-second at
// any common worker count drops more than the tolerance:
//
//	wirdrift -speed -max 0.25 BENCH_speed.json BENCH_speed_ci.json
//
// When either side was measured on a single CPU, multi-worker runs are
// skipped: a 1-core "speedup" only measures goroutine overhead.
//
// With -speed -ratchet, the baseline argument is instead an append-only
// BENCH_history.jsonl ledger (wirbench -speed-history): the gate compares the
// current report against the best throughput ever recorded per worker count,
// so the floor only moves up. -warn-only reports violations without failing
// (the break-in mode while a fresh ledger accumulates a baseline window):
//
//	wirdrift -speed -ratchet -max 0.25 BENCH_history.jsonl BENCH_speed_ci.json
//
// With -reuse-ratio, the gate instead compares the reuse_achieved_ratio
// derived metric (achieved/achievable reuse, from the reuse profiler's shadow
// tables — wirsim -stats json fills it). This check is always warn-only: the
// ratio is a telemetry-quality signal, not a performance contract, so drift
// is reported but never fails the build, and a baseline predating the metric
// passes with a note:
//
//	wirdrift -reuse-ratio -max 0.10 BENCH_baseline.json BENCH_ci.json
//
// Exit status: 0 within tolerance, 2 on usage or read errors, 3 on drift
// (the shared "run judged bad" code — see docs/ROBUSTNESS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/wirsim/wir/internal/metrics"
	"github.com/wirsim/wir/internal/speed"
)

func main() {
	max := flag.Float64("max", 0.15, "maximum allowed relative drift (0.15 = 15%)")
	keys := flag.String("keys", "", "comma-separated derived metrics to compare (default: ipc_per_sm,bypass_rate)")
	speedMode := flag.Bool("speed", false, "compare wir-speed/1 throughput reports instead of wir-stats/1 metric reports")
	ratchet := flag.Bool("ratchet", false, "with -speed: baseline is a BENCH_history.jsonl ledger; compare against the best recorded run per worker count")
	warnOnly := flag.Bool("warn-only", false, "report violations without failing (exit 0)")
	reuseRatio := flag.Bool("reuse-ratio", false, "compare the reuse_achieved_ratio derived metric instead of the headline pair (always warn-only)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: wirdrift [-speed [-ratchet] [-warn-only] | -reuse-ratio] [-max FRAC] [-keys a,b] baseline.json current.json")
		os.Exit(2)
	}
	if *ratchet && !*speedMode {
		fmt.Fprintln(os.Stderr, "wirdrift: -ratchet requires -speed")
		os.Exit(2)
	}
	if *reuseRatio && *speedMode {
		fmt.Fprintln(os.Stderr, "wirdrift: -reuse-ratio compares wir-stats/1 reports; it cannot combine with -speed")
		os.Exit(2)
	}
	if *speedMode {
		var base *speed.Report
		if *ratchet {
			base = readBest(flag.Arg(0))
			if base == nil {
				fmt.Printf("wirdrift: %s is empty — no ratchet baseline yet, passing\n", flag.Arg(0))
				return
			}
		} else {
			base = readSpeed(flag.Arg(0))
		}
		violations := speed.Compare(base, readSpeed(flag.Arg(1)), *max)
		if len(violations) == 0 {
			fmt.Printf("wirdrift: %s vs %s throughput within %.0f%% tolerance\n", flag.Arg(0), flag.Arg(1), 100**max)
			return
		}
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "wirdrift:", v)
		}
		if *warnOnly {
			fmt.Fprintln(os.Stderr, "wirdrift: -warn-only set, not failing")
			return
		}
		os.Exit(3)
	}
	base := readReport(flag.Arg(0))
	cur := readReport(flag.Arg(1))

	if *reuseRatio {
		checkReuseRatio(base, cur, *max)
		return
	}

	var keyList []string
	if *keys != "" {
		keyList = strings.Split(*keys, ",")
	}
	violations := metrics.DriftViolations(base, cur, *max, keyList...)
	if len(violations) == 0 {
		fmt.Printf("wirdrift: %s vs %s within %.0f%% tolerance\n", flag.Arg(0), flag.Arg(1), 100**max)
		return
	}
	for _, v := range violations {
		fmt.Fprintln(os.Stderr, "wirdrift:", v)
	}
	if *warnOnly {
		fmt.Fprintln(os.Stderr, "wirdrift: -warn-only set, not failing")
		return
	}
	os.Exit(3)
}

// checkReuseRatio compares the achieved/achievable reuse ratio between two
// wir-stats/1 reports. Always warn-only: a violation (or a baseline without
// the metric) is reported but never changes the exit status — the ratio warns
// that reuse headroom shifted, it does not gate the build.
func checkReuseRatio(base, cur *metrics.Report, max float64) {
	const key = "reuse_achieved_ratio"
	if _, ok := base.Derived[key]; !ok {
		fmt.Printf("wirdrift: baseline has no %s (predates the reuse profiler) — passing\n", key)
		return
	}
	if _, ok := cur.Derived[key]; !ok {
		fmt.Printf("wirdrift: current report has no %s (run wirsim -stats json with the reuse profiler) — passing\n", key)
		return
	}
	violations := metrics.DriftViolations(base, cur, max, key)
	if len(violations) == 0 {
		fmt.Printf("wirdrift: %s vs %s %s within %.0f%% tolerance\n", flag.Arg(0), flag.Arg(1), key, 100*max)
		return
	}
	for _, v := range violations {
		fmt.Fprintln(os.Stderr, "wirdrift:", v)
	}
	fmt.Fprintln(os.Stderr, "wirdrift: reuse-ratio drift is warn-only, not failing")
}

// readBest loads a BENCH_history.jsonl ledger and synthesizes the ratchet
// baseline (best run per worker count). Returns nil for an empty or missing
// ledger — the first run of a fresh ledger has nothing to ratchet against.
func readBest(path string) *speed.Report {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		fmt.Fprintln(os.Stderr, "wirdrift:", err)
		os.Exit(2)
	}
	defer f.Close()
	history, err := speed.ReadHistory(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wirdrift: %s: %v\n", path, err)
		os.Exit(2)
	}
	return speed.Best(history)
}

func readSpeed(path string) *speed.Report {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wirdrift:", err)
		os.Exit(2)
	}
	defer f.Close()
	r, err := speed.Read(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wirdrift: %s: %v\n", path, err)
		os.Exit(2)
	}
	return r
}

func readReport(path string) *metrics.Report {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wirdrift:", err)
		os.Exit(2)
	}
	defer f.Close()
	r, err := metrics.ReadReport(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wirdrift: %s: %v\n", path, err)
		os.Exit(2)
	}
	return r
}
