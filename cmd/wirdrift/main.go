// Command wirdrift compares two wir-stats/1 reports and fails when headline
// derived metrics drift beyond a relative tolerance. CI uses it to gate the
// benchmark smoke run against the committed baseline:
//
//	wirdrift -max 0.15 BENCH_baseline.json BENCH_ci.json
//
// With -speed, the inputs are wir-speed/1 throughput reports instead
// (wirbench -speed), and the gate fails when simulated cycles-per-second at
// any common worker count drops more than the tolerance:
//
//	wirdrift -speed -max 0.25 BENCH_speed.json BENCH_speed_ci.json
//
// Exit status: 0 within tolerance, 2 on usage or read errors, 3 on drift
// (the shared "run judged bad" code — see docs/ROBUSTNESS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/wirsim/wir/internal/metrics"
	"github.com/wirsim/wir/internal/speed"
)

func main() {
	max := flag.Float64("max", 0.15, "maximum allowed relative drift (0.15 = 15%)")
	keys := flag.String("keys", "", "comma-separated derived metrics to compare (default: ipc_per_sm,bypass_rate)")
	speedMode := flag.Bool("speed", false, "compare wir-speed/1 throughput reports instead of wir-stats/1 metric reports")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: wirdrift [-speed] [-max FRAC] [-keys a,b] baseline.json current.json")
		os.Exit(2)
	}
	if *speedMode {
		violations := speed.Compare(readSpeed(flag.Arg(0)), readSpeed(flag.Arg(1)), *max)
		if len(violations) == 0 {
			fmt.Printf("wirdrift: %s vs %s throughput within %.0f%% tolerance\n", flag.Arg(0), flag.Arg(1), 100**max)
			return
		}
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "wirdrift:", v)
		}
		os.Exit(3)
	}
	base := readReport(flag.Arg(0))
	cur := readReport(flag.Arg(1))

	var keyList []string
	if *keys != "" {
		keyList = strings.Split(*keys, ",")
	}
	violations := metrics.DriftViolations(base, cur, *max, keyList...)
	if len(violations) == 0 {
		fmt.Printf("wirdrift: %s vs %s within %.0f%% tolerance\n", flag.Arg(0), flag.Arg(1), 100**max)
		return
	}
	for _, v := range violations {
		fmt.Fprintln(os.Stderr, "wirdrift:", v)
	}
	os.Exit(3)
}

func readSpeed(path string) *speed.Report {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wirdrift:", err)
		os.Exit(2)
	}
	defer f.Close()
	r, err := speed.Read(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wirdrift: %s: %v\n", path, err)
		os.Exit(2)
	}
	return r
}

func readReport(path string) *metrics.Report {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wirdrift:", err)
		os.Exit(2)
	}
	defer f.Close()
	r, err := metrics.ReadReport(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wirdrift: %s: %v\n", path, err)
		os.Exit(2)
	}
	return r
}
