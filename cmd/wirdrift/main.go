// Command wirdrift compares two wir-stats/1 reports and fails when headline
// derived metrics drift beyond a relative tolerance. CI uses it to gate the
// benchmark smoke run against the committed baseline:
//
//	wirdrift -max 0.15 BENCH_baseline.json BENCH_ci.json
//
// Exit status: 0 within tolerance, 2 on usage or read errors, 3 on drift
// (the shared "run judged bad" code — see docs/ROBUSTNESS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/wirsim/wir/internal/metrics"
)

func main() {
	max := flag.Float64("max", 0.15, "maximum allowed relative drift (0.15 = 15%)")
	keys := flag.String("keys", "", "comma-separated derived metrics to compare (default: ipc_per_sm,bypass_rate)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: wirdrift [-max FRAC] [-keys a,b] baseline.json current.json")
		os.Exit(2)
	}
	base := readReport(flag.Arg(0))
	cur := readReport(flag.Arg(1))

	var keyList []string
	if *keys != "" {
		keyList = strings.Split(*keys, ",")
	}
	violations := metrics.DriftViolations(base, cur, *max, keyList...)
	if len(violations) == 0 {
		fmt.Printf("wirdrift: %s vs %s within %.0f%% tolerance\n", flag.Arg(0), flag.Arg(1), 100**max)
		return
	}
	for _, v := range violations {
		fmt.Fprintln(os.Stderr, "wirdrift:", v)
	}
	os.Exit(3)
}

func readReport(path string) *metrics.Report {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wirdrift:", err)
		os.Exit(2)
	}
	defer f.Close()
	r, err := metrics.ReadReport(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wirdrift: %s: %v\n", path, err)
		os.Exit(2)
	}
	return r
}
