// Distributed sweep fan-out: wirbench -serve-sweep embeds a dist.Coordinator
// and farms every fresh simulation out to wirbench -worker processes; figure
// rendering stays in-order on the coordinator, so the output is byte-identical
// to a local -j run no matter how many workers join, die, or duplicate
// deliveries (see docs/DISTRIBUTED.md).
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"github.com/wirsim/wir/internal/config"
	"github.com/wirsim/wir/internal/dist"
	"github.com/wirsim/wir/internal/harness"
)

// distFlags is the resolved distributed command line.
type distFlags struct {
	serve    string // -serve-sweep listen address
	worker   string // -worker coordinator URL
	name     string // -worker-name
	lease    time.Duration
	grace    time.Duration
	retries  int
	chaos    string // -dist-chaos seed,rate,kinds
	jsonPath string // -dist-json summary artifact
	patience time.Duration
}

// runUnit executes one KindRun unit on a harness, bypassing its cache: the
// payload carries the fully mutated config, so no variant knowledge is needed.
// Execution errors are deterministic for a given config (the simulation is a
// pure function of it), so they are marked permanent: the coordinator
// quarantines them instead of burning retries reproducing the same fault.
func runUnit(h *harness.Harness, u dist.Unit) ([]byte, error) {
	var p dist.RunPayload
	if err := json.Unmarshal(u.Payload, &p); err != nil {
		return nil, dist.Permanent(fmt.Errorf("bad run payload: %w", err))
	}
	r, err := h.Execute(u.Key, p.Bench, p.Model, p.Cfg)
	if err != nil {
		return nil, dist.Permanent(err)
	}
	return json.Marshal(r)
}

// runWorker is wirbench -worker: pull run units from the coordinator until it
// drains. Returns the process exit code.
func runWorker(d distFlags, newHarness func(int) *harness.Harness) int {
	h := newHarness(1)
	w := dist.NewWorker(d.worker, dist.WorkerConfig{
		Name:     d.name,
		Kinds:    []string{dist.KindRun},
		Handler:  func(u dist.Unit) ([]byte, error) { return runUnit(h, u) },
		Patience: d.patience,
		Logf:     func(format string, args ...any) { fmt.Fprintf(os.Stderr, "wirbench: "+format+"\n", args...) },
	})
	if err := w.Run(context.Background()); err != nil {
		fmt.Fprintf(os.Stderr, "wirbench: worker: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "wirbench: worker done (%d units)\n", w.UnitsDone())
	return 0
}

// distServer is a running coordinator plus its HTTP listener.
type distServer struct {
	coord *dist.Coordinator
	srv   *http.Server
	addr  string
	chaos *dist.Chaos
}

// startDist brings up the coordinator for wirbench -serve-sweep and wires the
// main harness's executor to it. The coordinator's graceful-degradation
// executor runs on a separate local harness — never the main one, whose Run
// would re-enter the coordinator.
func startDist(d distFlags, newHarness func(int) *harness.Harness, mainH *harness.Harness) (*distServer, error) {
	var cz *dist.Chaos
	if d.chaos != "" {
		var err error
		cz, err = dist.ParseChaos(d.chaos)
		if err != nil {
			return nil, err
		}
	}
	localH := newHarness(1)
	coord := dist.NewCoordinator(dist.Config{
		Lease:      d.lease,
		Grace:      d.grace,
		MaxRetries: d.retries,
		Chaos:      cz,
		Local:      func(u dist.Unit) ([]byte, error) { return runUnit(localH, u) },
		Logf:       func(format string, args ...any) { fmt.Fprintf(os.Stderr, "wirbench: "+format+"\n", args...) },
	})
	ln, err := net.Listen("tcp", d.serve)
	if err != nil {
		coord.Close()
		return nil, err
	}
	srv := &http.Server{Handler: coord.Handler()}
	go srv.Serve(ln)
	fmt.Fprintf(os.Stderr, "wirbench: serving sweep on %s\n", ln.Addr())

	// Every cache miss of the main harness becomes a coordinator unit. The
	// unit key IS the cache key, so duplicate submissions collapse exactly
	// like duplicate cache demands, and delivered results flow back into the
	// main harness's memo cache for the figure rendering loops and -csv.
	mainH.Exec = func(key, abbr string, m config.Model, cfg config.Config) (*harness.Result, error) {
		payload, err := json.Marshal(dist.RunPayload{Bench: abbr, Model: m, Cfg: cfg})
		if err != nil {
			return nil, err
		}
		out, err := coord.Do(dist.Unit{Key: key, Kind: dist.KindRun, Payload: payload})
		if err != nil {
			return nil, err
		}
		var r harness.Result
		if err := json.Unmarshal(out, &r); err != nil {
			return nil, fmt.Errorf("dist: unit %s: undecodable result: %w", key, err)
		}
		return &r, nil
	}
	return &distServer{coord: coord, srv: srv, addr: ln.Addr().String(), chaos: cz}, nil
}

// finish drains the coordinator, releases workers, writes the wir-dist/1
// summary artifact, and tears the server down.
func (ds *distServer) finish(jsonPath string) error {
	ds.coord.DrainAndWait(5 * time.Second)
	s := ds.coord.Snapshot()
	fmt.Fprintf(os.Stderr, "wirbench: dist sweep done: %d units (%d dispatched, %d retries, %d reclaims, %d duplicates dropped, %d local)\n",
		s.Counters.Completed, s.Counters.Dispatched, s.Counters.Retries,
		s.Counters.Reclaims, s.Counters.Duplicates, s.Counters.LocalRuns)
	if ds.chaos != nil {
		fmt.Fprintf(os.Stderr, "wirbench: %s\n", ds.chaos.Summary())
	}
	var err error
	if jsonPath != "" {
		err = ds.writeSummary(jsonPath, s)
	}
	ds.srv.Close()
	ds.coord.Close()
	return err
}

// writeSummary writes the wir-dist/1 summary (also flushed on interrupt).
func (ds *distServer) writeSummary(path string, s *dist.Summary) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wirbench: wrote %s summary to %s\n", dist.SummarySchema, path)
	return nil
}
