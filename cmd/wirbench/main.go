// Command wirbench regenerates the WIR paper's figures and tables.
//
// Usage:
//
//	wirbench [-sms N] [-j N] [-parallel] [-dense] [-v] [-exp LIST] [-json FILE]
//	         [-csv FILE] [-speed FILE] [-speed-history FILE]
//	         [-hostprof FILE] [-hostprof-json FILE] [-reuseprof-json FILE]
//
// LIST is a comma-separated subset of:
// headline, fig2, fig12..fig22, table1, table2, table3,
// ablation-assoc, ablation-pending, ablation-gating — or "all" (default).
// -j widens the sweep worker pool (simulations of a figure run concurrently;
// output is byte-identical to -j 1 — see docs/PERFORMANCE.md).
// -json writes the complete machine-readable report (running everything);
// -csv dumps every raw simulation as one row.
// -speed times the selected experiments at -j 1 and -j N on fresh harnesses
// and writes a wir-speed/1 throughput report instead of figure text; the
// timed passes run unprofiled (the profiler's clock reads would depress the
// recorded throughput). -speed-history appends the report to the ratchet
// ledger; -hostprof / -hostprof-json write a host profile from one extra
// untimed profiled pass as a pprof file / wir-hostprof/1 JSON (see
// docs/PERFORMANCE.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/wirsim/wir/internal/graceful"
	"github.com/wirsim/wir/internal/harness"
	"github.com/wirsim/wir/internal/reuseprof"
)

// step is one selectable experiment, drawn from the shared harness registry
// so wirbench -exp and wirserve sweep jobs speak the same names.
type step = harness.Experiment

// steps enumerates every experiment in presentation order.
func steps() []step { return harness.Experiments() }

func main() {
	sms := flag.Int("sms", 15, "number of simulated SMs (paper: 15)")
	workers := flag.Int("j", runtime.NumCPU(), "parallel simulations in the sweep worker pool")
	parallelSM := flag.Bool("parallel", false, "also step each simulation's SMs in parallel goroutines (bit-identical)")
	dense := flag.Bool("dense", false, "disable event-driven stepping: sweep every quiet cycle densely (bit-identical; for A/B and debugging)")
	verbose := flag.Bool("v", false, "print per-run progress")
	exp := flag.String("exp", "all", "comma-separated experiments to run")
	jsonPath := flag.String("json", "", "additionally write the full report as JSON to this file (runs all experiments)")
	csvPath := flag.String("csv", "", "additionally write every raw run as CSV to this file")
	speedPath := flag.String("speed", "", "time the selected experiments at -j 1 and -j N on fresh harnesses; write a wir-speed/1 report to this file and skip figure output")
	speedHistory := flag.String("speed-history", "", "with -speed: also append the report to this JSONL ledger (the ratchet baseline for wirdrift -speed -ratchet)")
	hostprofPath := flag.String("hostprof", "", "with -speed: also write the merged host profile as a gzip'd pprof file (go tool pprof)")
	hostprofJSON := flag.String("hostprof-json", "", "with -speed: also write the merged wir-hostprof/1 report as JSON")
	reuseJSON := flag.String("reuseprof-json", "", "write the merged wir-reuse/1 report (miss taxonomy, eviction ledger, shadow headroom) across every fresh simulation")
	serveSweep := flag.String("serve-sweep", "", "listen address (host:port) for a distributed-sweep coordinator; fresh simulations are farmed to -worker processes, output stays byte-identical")
	workerURL := flag.String("worker", "", "run as a sweep worker pulling units from this coordinator URL (e.g. http://host:9471)")
	workerName := flag.String("worker-name", "worker", "worker name for coordinator logs and provenance")
	distLease := flag.Duration("dist-lease", 15*time.Second, "with -serve-sweep: lease duration before an unheard-from worker's unit is reclaimed")
	distGrace := flag.Duration("dist-grace", 10*time.Second, "with -serve-sweep: how long to wait for a first worker before degrading to local execution")
	distRetries := flag.Int("dist-retries", 3, "with -serve-sweep: re-dispatches per unit before it falls back to local execution")
	distChaos := flag.String("dist-chaos", "", "with -serve-sweep: dist-level chaos spec seed,rate,kinds (kinds: kill, hbdelay, dropresult, dupresult, truncate, all)")
	distJSON := flag.String("dist-json", "", "with -serve-sweep: write the wir-dist/1 coordinator summary to this file")
	distPatience := flag.Duration("dist-patience", 2*time.Minute, "with -worker: give up after the coordinator is unreachable this long")
	flag.Parse()

	guard := graceful.New("wirbench")
	guard.Watch()

	newHarness := func(w int) *harness.Harness {
		h := harness.New()
		h.SMs = *sms
		h.ParallelSM = *parallelSM
		h.Dense = *dense
		h.SetParallelism(w)
		if *verbose {
			h.Progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
		}
		return h
	}

	if *workerURL != "" {
		if *serveSweep != "" || *speedPath != "" {
			fmt.Fprintln(os.Stderr, "wirbench: -worker is exclusive with -serve-sweep and -speed")
			os.Exit(2)
		}
		os.Exit(runWorker(distFlags{worker: *workerURL, name: *workerName, patience: *distPatience}, newHarness))
	}
	if *serveSweep != "" && *speedPath != "" {
		// The coordinator memoizes across passes, so the second -speed pass
		// would measure cache hits, not throughput.
		fmt.Fprintln(os.Stderr, "wirbench: -speed cannot run under -serve-sweep")
		os.Exit(2)
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	all := want["all"]
	sel := func(name string) bool { return all || want[name] }

	if *speedPath != "" {
		o := speedOpts{path: *speedPath, history: *speedHistory, prof: *hostprofPath, profJSON: *hostprofJSON, reuseJSON: *reuseJSON}
		if err := runSpeed(o, *sms, *workers, newHarness, sel, guard); err != nil {
			fmt.Fprintf(os.Stderr, "wirbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	h := newHarness(*workers)
	if *reuseJSON != "" {
		h.ReuseProf = reuseprof.NewCollector(0)
	}
	var ds *distServer
	if *serveSweep != "" {
		var err error
		ds, err = startDist(distFlags{
			serve: *serveSweep, lease: *distLease, grace: *distGrace,
			retries: *distRetries, chaos: *distChaos,
		}, newHarness, h)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wirbench: %v\n", err)
			os.Exit(1)
		}
		if *distJSON != "" {
			guard.OnInterrupt(func() { ds.writeSummary(*distJSON, ds.coord.Snapshot()) })
		}
	}
	if *csvPath != "" {
		guard.OnInterrupt(func() {
			if f, err := os.Create(*csvPath); err == nil {
				h.WriteRunsCSV(f)
				f.Close()
				fmt.Fprintf(os.Stderr, "wirbench: flushed %d partial raw runs to %s\n", h.RunCount(), *csvPath)
			}
		})
	}
	out := os.Stdout
	ran := 0
	for _, s := range steps() {
		if !sel(s.Name) {
			continue
		}
		if ran > 0 {
			fmt.Fprintln(out)
		}
		if err := s.Run(h, out); err != nil {
			fmt.Fprintf(os.Stderr, "wirbench: %s: %v\n", s.Name, err)
			os.Exit(1)
		}
		ran++
	}
	if ran == 0 && *jsonPath == "" && *csvPath == "" {
		fmt.Fprintf(os.Stderr, "wirbench: no experiment matched %q\n", *exp)
		os.Exit(2)
	}
	if *jsonPath != "" {
		rep, err := h.RunAll()
		if err != nil {
			fmt.Fprintf(os.Stderr, "wirbench: report: %v\n", err)
			os.Exit(1)
		}
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wirbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := rep.WriteJSON(f); err != nil {
			fmt.Fprintf(os.Stderr, "wirbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote JSON report to %s\n", *jsonPath)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wirbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := h.WriteRunsCSV(f); err != nil {
			fmt.Fprintf(os.Stderr, "wirbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d raw runs to %s\n", h.RunCount(), *csvPath)
	}
	if *reuseJSON != "" {
		if err := writeReuseJSON(*reuseJSON, h.ReuseProf); err != nil {
			fmt.Fprintf(os.Stderr, "wirbench: %v\n", err)
			os.Exit(1)
		}
	}
	if ds != nil {
		if err := ds.finish(*distJSON); err != nil {
			fmt.Fprintf(os.Stderr, "wirbench: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeReuseJSON writes the merged wir-reuse/1 report accumulated across every
// fresh simulation of a harness (or, for -speed, of both passes).
func writeReuseJSON(path string, c *reuseprof.Collector) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wirbench: wrote %s report to %s (achieved/achievable %.1f%%)\n",
		reuseprof.Schema, path, 100*c.AchievedRatio())
	return nil
}
