// Command wirbench regenerates the WIR paper's figures and tables.
//
// Usage:
//
//	wirbench [-sms N] [-v] [-exp LIST] [-json FILE] [-csv FILE]
//
// LIST is a comma-separated subset of:
// headline, fig2, fig12..fig22, table1, table2, table3,
// ablation-assoc, ablation-pending, ablation-gating — or "all" (default).
// -json writes the complete machine-readable report (running everything);
// -csv dumps every raw simulation as one row.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/wirsim/wir/internal/harness"
)

func main() {
	sms := flag.Int("sms", 15, "number of simulated SMs (paper: 15)")
	verbose := flag.Bool("v", false, "print per-run progress")
	exp := flag.String("exp", "all", "comma-separated experiments to run")
	jsonPath := flag.String("json", "", "additionally write the full report as JSON to this file (runs all experiments)")
	csvPath := flag.String("csv", "", "additionally write every raw run as CSV to this file")
	flag.Parse()

	h := harness.New()
	h.SMs = *sms
	if *verbose {
		h.Progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	all := want["all"]
	sel := func(name string) bool { return all || want[name] }
	out := os.Stdout

	type step struct {
		name string
		run  func() error
	}
	steps := []step{
		{"headline", func() error {
			r, err := h.RunHeadline()
			if err != nil {
				return err
			}
			r.WriteText(out)
			return nil
		}},
		{"fig2", func() error {
			r, err := h.Fig2()
			if err != nil {
				return err
			}
			r.WriteText(out)
			return nil
		}},
		{"fig12", func() error {
			r, err := h.Fig12()
			if err != nil {
				return err
			}
			r.WriteText(out)
			return nil
		}},
		{"fig13", func() error {
			r, err := h.Fig13()
			if err != nil {
				return err
			}
			r.WriteText(out)
			return nil
		}},
		{"fig14", func() error {
			r, err := h.Fig14()
			if err != nil {
				return err
			}
			r.WriteText(out)
			return nil
		}},
		{"fig15", func() error {
			r, err := h.Fig15()
			if err != nil {
				return err
			}
			r.WriteText(out)
			return nil
		}},
		{"fig16", func() error {
			r, err := h.Fig16()
			if err != nil {
				return err
			}
			r.WriteText(out)
			return nil
		}},
		{"fig17", func() error {
			r, err := h.Fig17()
			if err != nil {
				return err
			}
			r.WriteText(out)
			return nil
		}},
		{"fig18", func() error {
			r, err := h.Fig18()
			if err != nil {
				return err
			}
			r.WriteText(out)
			return nil
		}},
		{"fig19", func() error {
			r, err := h.Fig19()
			if err != nil {
				return err
			}
			r.WriteText(out)
			return nil
		}},
		{"fig20", func() error {
			r, err := h.Fig20()
			if err != nil {
				return err
			}
			r.WriteText(out)
			return nil
		}},
		{"fig21", func() error {
			r, err := h.Fig21()
			if err != nil {
				return err
			}
			r.WriteText(out)
			return nil
		}},
		{"fig22", func() error {
			r, err := h.Fig22()
			if err != nil {
				return err
			}
			r.WriteText(out)
			return nil
		}},
		{"table1", func() error {
			r, err := h.TableI()
			if err != nil {
				return err
			}
			r.WriteText(out)
			return nil
		}},
		{"table2", func() error {
			harness.TableII(out)
			return nil
		}},
		{"table3", func() error {
			harness.TableIII(out)
			return nil
		}},
		{"ablation-assoc", func() error {
			r, err := h.AblationAssociativity()
			if err != nil {
				return err
			}
			r.WriteText(out)
			return nil
		}},
		{"ablation-pending", func() error {
			r, err := h.AblationPendingQueue()
			if err != nil {
				return err
			}
			r.WriteText(out)
			return nil
		}},
		{"ablation-gating", func() error {
			r, err := h.AblationPowerGating()
			if err != nil {
				return err
			}
			r.WriteText(out)
			return nil
		}},
		{"ablation-scheduler", func() error {
			r, err := h.AblationScheduler()
			if err != nil {
				return err
			}
			r.WriteText(out)
			return nil
		}},
	}
	ran := 0
	for _, s := range steps {
		if !sel(s.name) {
			continue
		}
		if ran > 0 {
			fmt.Fprintln(out)
		}
		if err := s.run(); err != nil {
			fmt.Fprintf(os.Stderr, "wirbench: %s: %v\n", s.name, err)
			os.Exit(1)
		}
		ran++
	}
	if ran == 0 && *jsonPath == "" && *csvPath == "" {
		fmt.Fprintf(os.Stderr, "wirbench: no experiment matched %q\n", *exp)
		os.Exit(2)
	}
	if *jsonPath != "" {
		rep, err := h.RunAll()
		if err != nil {
			fmt.Fprintf(os.Stderr, "wirbench: report: %v\n", err)
			os.Exit(1)
		}
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wirbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := rep.WriteJSON(f); err != nil {
			fmt.Fprintf(os.Stderr, "wirbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote JSON report to %s\n", *jsonPath)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wirbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := h.WriteRunsCSV(f); err != nil {
			fmt.Fprintf(os.Stderr, "wirbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d raw runs to %s\n", h.RunCount(), *csvPath)
	}
}
