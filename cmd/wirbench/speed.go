package main

import (
	"fmt"
	"io"
	"os"
	"time"

	"github.com/wirsim/wir/internal/graceful"
	"github.com/wirsim/wir/internal/harness"
	"github.com/wirsim/wir/internal/hostprof"
	"github.com/wirsim/wir/internal/reuseprof"
	"github.com/wirsim/wir/internal/speed"
)

// flushInterruptedSpeed writes the passes recorded so far as an Interrupted
// wir-speed/1 report — to the report path and, when configured, the history
// ledger — so an aborted measurement leaves analyzable (but never
// ratchet-eligible) evidence behind. Runs on the signal goroutine, under the
// guard lock, so rep is not mid-mutation.
func flushInterruptedSpeed(o speedOpts, rep *speed.Report) {
	if len(rep.Runs) == 0 {
		fmt.Fprintln(os.Stderr, "wirbench: no completed speed pass to flush")
		return
	}
	rep.Finalize()
	rep.StampProvenance()
	rep.Interrupted = true
	if f, err := os.Create(o.path); err == nil {
		rep.Write(f)
		f.Close()
		fmt.Fprintf(os.Stderr, "wirbench: flushed interrupted speed report (%d passes) to %s\n", len(rep.Runs), o.path)
	}
	if o.history != "" {
		if err := speed.AppendHistory(o.history, rep); err == nil {
			fmt.Fprintf(os.Stderr, "wirbench: appended interrupted run to %s\n", o.history)
		}
	}
}

// speedOpts carries the output destinations of a -speed run.
type speedOpts struct {
	path      string // wir-speed/1 report (required)
	history   string // append-only BENCH_history.jsonl ledger ("" = off)
	prof      string // gzip'd pprof host profile ("" = off)
	profJSON  string // wir-hostprof/1 JSON report ("" = off)
	reuseJSON string // merged wir-reuse/1 report ("" = off)
}

// runSpeed measures sweep throughput: every selected experiment runs twice —
// once at -j 1, once at the requested width — each pass on a FRESH harness so
// the memoization cache of the first pass cannot serve the second. Figure
// text goes to io.Discard (rendering is not what is being measured, and the
// byte-identical-output guarantee is the conformance suite's job); what is
// recorded per experiment is wall time and the simulated cycles its runs
// produced, which makes the report comparable across machines as
// cycles-per-second.
//
// The timed passes run UNPROFILED: the hostprof clock reads cost a large
// constant fraction of a tick, so carrying the collector inside the timing
// loop depressed every recorded number and hid real speedups from the
// ratchet. When the host-profile or reuse artifacts are requested, one extra
// profiled pass runs after the timed ones; its wall time is never recorded in
// the report, and its phase breakdown and skip-opportunity fraction annotate
// the -j 1 run for context.
//
// On SIGINT/SIGTERM the guard flushes whatever passes completed as an
// Interrupted report — kept in the ledger for forensics, never used as a
// ratchet baseline (speed.Best skips it) — and exits with graceful.ExitCode.
func runSpeed(o speedOpts, sms, workers int, newHarness func(int) *harness.Harness, sel func(string) bool, guard *graceful.Guard) error {
	widths := []int{1, workers}
	if workers <= 1 {
		widths = []int{1, 1} // keep the two-run shape; speedup degenerates to ~1
	}
	rep := &speed.Report{SMs: sms}
	guard.OnInterrupt(func() { flushInterruptedSpeed(o, rep) })
	pass := func(h *harness.Harness, w int) (speed.Run, error) {
		run := speed.Run{Workers: w}
		for _, s := range steps() {
			if !sel(s.Name) {
				continue
			}
			before := h.SimCycles()
			t0 := time.Now()
			if err := s.Run(h, io.Discard); err != nil {
				return run, fmt.Errorf("%s (workers=%d): %w", s.Name, w, err)
			}
			run.Experiments = append(run.Experiments, speed.Experiment{
				Name:      s.Name,
				WallMS:    float64(time.Since(t0).Microseconds()) / 1000,
				SimCycles: h.SimCycles() - before,
			})
		}
		if len(run.Experiments) == 0 {
			return run, fmt.Errorf("no experiment selected for -speed")
		}
		return run, nil
	}
	for _, w := range widths {
		run, err := pass(newHarness(w), w)
		if err != nil {
			return err
		}
		guard.Protect(func() { rep.Runs = append(rep.Runs, run) })
		fmt.Fprintf(os.Stderr, "wirbench: speed pass -j %d done\n", w)
	}
	var merged *hostprof.Collector
	mergedReuse := reuseprof.NewCollector(0)
	if o.prof != "" || o.profJSON != "" || o.reuseJSON != "" {
		// Untimed artifact pass at -j 1: the collectors observe a full sweep
		// without their overhead contaminating the recorded wall times.
		h := newHarness(1)
		h.HostProf = hostprof.NewCollector(0, 0)
		if o.reuseJSON != "" {
			h.ReuseProf = reuseprof.NewCollector(0)
		}
		if _, err := pass(h, 1); err != nil {
			return err
		}
		merged = h.HostProf
		mergedReuse.Merge(h.ReuseProf)
		guard.Protect(func() {
			if len(rep.Runs) > 0 {
				rep.Runs[0].Phases = phaseBreakdown(merged)
				rep.Runs[0].SkipOpportunity = merged.SkipOpportunity()
			}
		})
		fmt.Fprintln(os.Stderr, "wirbench: untimed profiled pass done")
	}
	rep.Finalize()
	rep.StampProvenance()
	f, err := os.Create(o.path)
	if err != nil {
		return err
	}
	if err := rep.Write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wirbench: wrote %s (%d cpus, speedup %.2fx at -j %d)\n",
		o.path, rep.CPUs, rep.Speedup, widths[len(widths)-1])
	if o.history != "" {
		if err := speed.AppendHistory(o.history, rep); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wirbench: appended run to %s\n", o.history)
	}
	if o.prof != "" {
		pf, err := os.Create(o.prof)
		if err != nil {
			return err
		}
		if err := merged.WriteProfile(pf); err != nil {
			pf.Close()
			return err
		}
		if err := pf.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wirbench: wrote host profile to %s (go tool pprof %s)\n", o.prof, o.prof)
	}
	if o.profJSON != "" {
		jf, err := os.Create(o.profJSON)
		if err != nil {
			return err
		}
		if err := merged.Report().WriteJSON(jf); err != nil {
			jf.Close()
			return err
		}
		if err := jf.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wirbench: wrote %s report to %s\n", hostprof.Schema, o.profJSON)
	}
	if o.reuseJSON != "" {
		if err := writeReuseJSON(o.reuseJSON, mergedReuse); err != nil {
			return err
		}
	}
	return nil
}

// phaseBreakdown flattens a pass's host profile into the wir-speed/1 phase
// list: the driver phases (with their allocation deltas), then each SM phase
// summed across SMs.
func phaseBreakdown(c *hostprof.Collector) []speed.PhaseMS {
	r := c.Report()
	var out []speed.PhaseMS
	for _, p := range r.Driver {
		out = append(out, speed.PhaseMS{Name: p.Phase, WallMS: p.WallMS, AllocBytes: p.AllocBytes})
	}
	sums := map[string]float64{}
	var order []string
	for _, sr := range r.SMs {
		for _, p := range sr.Phases {
			if _, ok := sums[p.Phase]; !ok {
				order = append(order, p.Phase)
			}
			sums[p.Phase] += p.WallMS
		}
	}
	for _, name := range order {
		out = append(out, speed.PhaseMS{Name: name, WallMS: sums[name]})
	}
	return out
}
