package main

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"github.com/wirsim/wir/internal/harness"
	"github.com/wirsim/wir/internal/speed"
)

// runSpeed measures sweep throughput: every selected experiment runs twice —
// once at -j 1, once at the requested width — each pass on a FRESH harness so
// the memoization cache of the first pass cannot serve the second. Figure
// text goes to io.Discard (rendering is not what is being measured, and the
// byte-identical-output guarantee is the conformance suite's job); what is
// recorded per experiment is wall time and the simulated cycles its runs
// produced, which makes the report comparable across machines as
// cycles-per-second.
func runSpeed(path string, sms, workers int, newHarness func(int) *harness.Harness, sel func(string) bool) error {
	widths := []int{1, workers}
	if workers <= 1 {
		widths = []int{1, 1} // keep the two-run shape; speedup degenerates to ~1
	}
	rep := &speed.Report{SMs: sms, CPUs: runtime.NumCPU()}
	for _, w := range widths {
		h := newHarness(w)
		run := speed.Run{Workers: w}
		for _, s := range steps() {
			if !sel(s.name) {
				continue
			}
			before := h.SimCycles()
			t0 := time.Now()
			if err := s.run(h, io.Discard); err != nil {
				return fmt.Errorf("%s (workers=%d): %w", s.name, w, err)
			}
			run.Experiments = append(run.Experiments, speed.Experiment{
				Name:      s.name,
				WallMS:    float64(time.Since(t0).Microseconds()) / 1000,
				SimCycles: h.SimCycles() - before,
			})
		}
		if len(run.Experiments) == 0 {
			return fmt.Errorf("no experiment selected for -speed")
		}
		rep.Runs = append(rep.Runs, run)
		fmt.Fprintf(os.Stderr, "wirbench: speed pass -j %d done\n", w)
	}
	rep.Finalize()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.Write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wirbench: wrote %s (%d cpus, speedup %.2fx at -j %d)\n",
		path, rep.CPUs, rep.Speedup, widths[len(widths)-1])
	return nil
}
