// Command wirtrace converts a recorded wir-trace/1 JSONL pipeline trace into
// Chrome trace-event JSON for the Perfetto UI (ui.perfetto.dev) or
// chrome://tracing.
//
// Usage:
//
//	wirsim -trace-json run.jsonl KM
//	wirtrace -o run.json run.jsonl    # or: wirtrace < run.jsonl > run.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/wirsim/wir/internal/perfetto"
	"github.com/wirsim/wir/internal/trace"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "usage: wirtrace [-o out.json] [trace.jsonl]")
		os.Exit(2)
	}

	var in io.Reader = os.Stdin
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		fatal(err)
		defer f.Close()
		in = f
	}
	events, err := trace.ReadJSONL(in)
	fatal(err)

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		fatal(err)
		defer func() { fatal(f.Close()) }()
		w = f
	}
	fatal(perfetto.Write(w, events))
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wirtrace: wrote %d pipeline events to %s\n", len(events), *out)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "wirtrace:", err)
		os.Exit(1)
	}
}
