package wir

import "github.com/wirsim/wir/internal/metrics"

// MetricsRegistry holds named counters, gauges and log2-bucketed histograms.
// All instruments update atomically, so a live HTTP exporter can scrape a run
// in progress.
type MetricsRegistry = metrics.Registry

// NewMetricsRegistry returns an empty registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// Instruments bundles the histograms fed by the simulator's hot paths
// (reuse distance, bank-conflict retries, MSHR occupancy, pending-queue wait,
// issue-to-retire latency). Attach with GPU.SetInstruments.
type Instruments = metrics.Instruments

// NewInstruments creates the standard instrument set registered in reg (reg
// may be nil for unregistered collection).
func NewInstruments(reg *MetricsRegistry) *Instruments { return metrics.NewInstruments(reg) }

// Sampler snapshots the run counters every Every cycles into an interval
// time series. Attach with GPU.SetSampler; close the tail interval with
// GPU.FlushSampler.
type Sampler = metrics.Sampler

// NewSampler returns a sampler with the given interval length in cycles.
func NewSampler(every uint64) *Sampler { return metrics.NewSampler(every) }

// MetricsSample is one interval of a sampled time series.
type MetricsSample = metrics.Sample

// StallReason classifies why a scheduler slot failed to issue in a cycle.
type StallReason = metrics.StallReason

// StallReport aggregates per-scheduler-slot issue/stall accounting for a run.
type StallReport = metrics.StallReport

// StatsReport is the machine-readable end-of-run report (wir-stats/1).
type StatsReport = metrics.Report

// NewStatsReport builds a report from the final counters.
func NewStatsReport(benchmark, model string, sms int, st *Stats) *StatsReport {
	return metrics.NewReport(benchmark, model, sms, st)
}

// MetricsHandler returns an http.Handler exposing reg at /metrics in the
// Prometheus text format plus the net/http/pprof endpoints.
var MetricsHandler = metrics.Handler

// ServeMetrics starts an HTTP server for reg on addr in a new goroutine.
var ServeMetrics = metrics.Serve
