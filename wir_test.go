package wir_test

import (
	"testing"

	wir "github.com/wirsim/wir"
)

func TestFacadeModels(t *testing.T) {
	if len(wir.AllModels) != 10 {
		t.Fatalf("expected 10 models, got %d", len(wir.AllModels))
	}
	m, err := wir.ParseModel("Affine+RLPV")
	if err != nil || m != wir.AffineRLPV {
		t.Fatalf("ParseModel: %v %v", m, err)
	}
}

func TestFacadeConfigDefaults(t *testing.T) {
	cfg := wir.DefaultConfig(wir.RLPV)
	if cfg.NumSMs != 15 || cfg.ReuseEntries != 256 {
		t.Fatalf("defaults drifted: %+v", cfg)
	}
	if _, err := wir.NewGPU(cfg); err != nil {
		t.Fatalf("NewGPU: %v", err)
	}
	cfg.ReuseEntries = 0
	if _, err := wir.NewGPU(cfg); err == nil {
		t.Fatalf("invalid config must be rejected")
	}
}

func TestFacadeFloatHelpers(t *testing.T) {
	if wir.F32FromBits(wir.F32Bits(1.5)) != 1.5 {
		t.Fatalf("float helpers do not round trip")
	}
}

func TestFacadeEnergy(t *testing.T) {
	cfg := wir.DefaultConfig(wir.Base)
	st := wir.Stats{Cycles: 100, Issued: 50, SPOps: 40, RFReads: 80, RFWrites: 40}
	eb := wir.Energy(cfg, &st)
	if eb.SM() <= 0 || eb.Total() < eb.SM() {
		t.Fatalf("energy scopes wrong: %v %v", eb.SM(), eb.Total())
	}
}

func TestFacadeMemoryAPI(t *testing.T) {
	g, err := wir.NewGPU(wir.DefaultConfig(wir.Base))
	if err != nil {
		t.Fatal(err)
	}
	ms := g.Mem()
	a := ms.Alloc(8)
	ms.StoreGlobal(a, 42)
	if ms.LoadGlobal(a) != 42 {
		t.Fatalf("memory round trip failed")
	}
	ms.SetConst([]uint32{7})
	if ms.LoadConst(0) != 7 {
		t.Fatalf("const segment failed")
	}
}
