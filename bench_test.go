// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each Benchmark* runs the corresponding experiment through the harness
// (results are memoized across benchmarks within one `go test -bench` run,
// exactly as the figures share runs in the paper) and prints the rows the
// paper reports. Use `go test -bench=. -benchmem` to regenerate everything,
// or -bench=Fig17 for a single figure.
package wir_test

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	wir "github.com/wirsim/wir"
	"github.com/wirsim/wir/internal/bench"
	"github.com/wirsim/wir/internal/harness"
)

// benchByAbbr resolves a suite benchmark for the throughput measurement.
func benchByAbbr(abbr string) (*bench.Benchmark, error) { return bench.ByAbbr(abbr) }

// benchWorkers widens the harness worker pool: the simulations behind a
// figure run concurrently, while the rendered rows stay byte-identical to a
// serial run (docs/PERFORMANCE.md).
var benchWorkers = flag.Int("j", runtime.NumCPU(), "parallel simulations in the bench harness worker pool")

var (
	benchHarness     *harness.Harness
	benchHarnessOnce sync.Once
)

// benchSMs reduces the simulated SM count for the bench harness when set;
// the paper's 15 SMs are the default.
func sharedHarness() *harness.Harness {
	benchHarnessOnce.Do(func() {
		benchHarness = harness.New()
		benchHarness.SetParallelism(*benchWorkers)
	})
	return benchHarness
}

// runExperiment executes fn once per benchmark iteration (memoization makes
// repeats nearly free) and prints the rendered experiment once.
func runExperiment(b *testing.B, name string, fn func(h *harness.Harness) (interface{ WriteText(w *os.File) }, error)) {
	b.Helper()
	h := sharedHarness()
	var printed bool
	for i := 0; i < b.N; i++ {
		r, err := fn(h)
		if err != nil {
			b.Fatalf("%s: %v", name, err)
		}
		if !printed {
			fmt.Println()
			r.WriteText(os.Stdout)
			printed = true
		}
	}
}

// writeTexter adapts the harness result types (whose WriteText takes an
// io.Writer) to runExperiment.
type writeTexter struct{ f func(*os.File) }

func (w writeTexter) WriteText(f *os.File) { w.f(f) }

func BenchmarkFig02RepeatedComputations(b *testing.B) {
	runExperiment(b, "fig2", func(h *harness.Harness) (interface{ WriteText(w *os.File) }, error) {
		r, err := h.Fig2()
		if err != nil {
			return nil, err
		}
		return writeTexter{func(f *os.File) { r.WriteText(f) }}, nil
	})
}

func BenchmarkFig12BackendInstructions(b *testing.B) {
	runExperiment(b, "fig12", func(h *harness.Harness) (interface{ WriteText(w *os.File) }, error) {
		r, err := h.Fig12()
		if err != nil {
			return nil, err
		}
		return writeTexter{func(f *os.File) { r.WriteText(f) }}, nil
	})
}

func BenchmarkFig13BackendOps(b *testing.B) {
	runExperiment(b, "fig13", func(h *harness.Harness) (interface{ WriteText(w *os.File) }, error) {
		r, err := h.Fig13()
		if err != nil {
			return nil, err
		}
		return writeTexter{func(f *os.File) { r.WriteText(f) }}, nil
	})
}

func BenchmarkFig14GPUEnergy(b *testing.B) {
	runExperiment(b, "fig14", func(h *harness.Harness) (interface{ WriteText(w *os.File) }, error) {
		r, err := h.Fig14()
		if err != nil {
			return nil, err
		}
		return writeTexter{func(f *os.File) { r.WriteText(f) }}, nil
	})
}

func BenchmarkFig15L1Accesses(b *testing.B) {
	runExperiment(b, "fig15", func(h *harness.Harness) (interface{ WriteText(w *os.File) }, error) {
		r, err := h.Fig15()
		if err != nil {
			return nil, err
		}
		return writeTexter{func(f *os.File) { r.WriteText(f) }}, nil
	})
}

func BenchmarkFig16SMEnergy(b *testing.B) {
	runExperiment(b, "fig16", func(h *harness.Harness) (interface{ WriteText(w *os.File) }, error) {
		r, err := h.Fig16()
		if err != nil {
			return nil, err
		}
		return writeTexter{func(f *os.File) { r.WriteText(f) }}, nil
	})
}

func BenchmarkFig17Speedup(b *testing.B) {
	runExperiment(b, "fig17", func(h *harness.Harness) (interface{ WriteText(w *os.File) }, error) {
		r, err := h.Fig17()
		if err != nil {
			return nil, err
		}
		return writeTexter{func(f *os.File) { r.WriteText(f) }}, nil
	})
}

func BenchmarkFig18VerifyCache(b *testing.B) {
	runExperiment(b, "fig18", func(h *harness.Harness) (interface{ WriteText(w *os.File) }, error) {
		r, err := h.Fig18()
		if err != nil {
			return nil, err
		}
		return writeTexter{func(f *os.File) { r.WriteText(f) }}, nil
	})
}

func BenchmarkFig19RegisterUtilization(b *testing.B) {
	runExperiment(b, "fig19", func(h *harness.Harness) (interface{ WriteText(w *os.File) }, error) {
		r, err := h.Fig19()
		if err != nil {
			return nil, err
		}
		return writeTexter{func(f *os.File) { r.WriteText(f) }}, nil
	})
}

func BenchmarkFig20VSBSweep(b *testing.B) {
	runExperiment(b, "fig20", func(h *harness.Harness) (interface{ WriteText(w *os.File) }, error) {
		r, err := h.Fig20()
		if err != nil {
			return nil, err
		}
		return writeTexter{func(f *os.File) { r.WriteText(f) }}, nil
	})
}

func BenchmarkFig21ReuseBufferSweep(b *testing.B) {
	runExperiment(b, "fig21", func(h *harness.Harness) (interface{ WriteText(w *os.File) }, error) {
		r, err := h.Fig21()
		if err != nil {
			return nil, err
		}
		return writeTexter{func(f *os.File) { r.WriteText(f) }}, nil
	})
}

func BenchmarkFig22PipelineDelay(b *testing.B) {
	runExperiment(b, "fig22", func(h *harness.Harness) (interface{ WriteText(w *os.File) }, error) {
		r, err := h.Fig22()
		if err != nil {
			return nil, err
		}
		return writeTexter{func(f *os.File) { r.WriteText(f) }}, nil
	})
}

func BenchmarkTableIBenchmarks(b *testing.B) {
	runExperiment(b, "table1", func(h *harness.Harness) (interface{ WriteText(w *os.File) }, error) {
		r, err := h.TableI()
		if err != nil {
			return nil, err
		}
		return writeTexter{func(f *os.File) { r.WriteText(f) }}, nil
	})
}

func BenchmarkTableIIParameters(b *testing.B) {
	runExperiment(b, "table2", func(h *harness.Harness) (interface{ WriteText(w *os.File) }, error) {
		return writeTexter{func(f *os.File) { harness.TableII(f) }}, nil
	})
}

func BenchmarkTableIIIHardwareCosts(b *testing.B) {
	runExperiment(b, "table3", func(h *harness.Harness) (interface{ WriteText(w *os.File) }, error) {
		return writeTexter{func(f *os.File) { harness.TableIII(f) }}, nil
	})
}

func BenchmarkAblationAssociativity(b *testing.B) {
	runExperiment(b, "ablation-assoc", func(h *harness.Harness) (interface{ WriteText(w *os.File) }, error) {
		r, err := h.AblationAssociativity()
		if err != nil {
			return nil, err
		}
		return writeTexter{func(f *os.File) { r.WriteText(f) }}, nil
	})
}

func BenchmarkAblationPendingQueue(b *testing.B) {
	runExperiment(b, "ablation-pending", func(h *harness.Harness) (interface{ WriteText(w *os.File) }, error) {
		r, err := h.AblationPendingQueue()
		if err != nil {
			return nil, err
		}
		return writeTexter{func(f *os.File) { r.WriteText(f) }}, nil
	})
}

func BenchmarkAblationPowerGating(b *testing.B) {
	runExperiment(b, "ablation-gating", func(h *harness.Harness) (interface{ WriteText(w *os.File) }, error) {
		r, err := h.AblationPowerGating()
		if err != nil {
			return nil, err
		}
		return writeTexter{func(f *os.File) { r.WriteText(f) }}, nil
	})
}

func BenchmarkAblationScheduler(b *testing.B) {
	runExperiment(b, "ablation-scheduler", func(h *harness.Harness) (interface{ WriteText(w *os.File) }, error) {
		r, err := h.AblationScheduler()
		if err != nil {
			return nil, err
		}
		return writeTexter{func(f *os.File) { r.WriteText(f) }}, nil
	})
}

func BenchmarkHeadline(b *testing.B) {
	runExperiment(b, "headline", func(h *harness.Harness) (interface{ WriteText(w *os.File) }, error) {
		r, err := h.RunHeadline()
		if err != nil {
			return nil, err
		}
		return writeTexter{func(f *os.File) { r.WriteText(f) }}, nil
	})
}

// BenchmarkSimulatorThroughput measures raw simulation speed (simulated warp
// instructions per wall-clock second) for the baseline and the full reuse
// design, quantifying the modeling overhead the WIR stages add to the
// simulator itself.
func BenchmarkSimulatorThroughput(b *testing.B) {
	for _, m := range []wir.Model{wir.Base, wir.RLPV} {
		m := m
		b.Run(m.String(), func(b *testing.B) {
			var instrs, cycles uint64
			for i := 0; i < b.N; i++ {
				cfg := wir.DefaultConfig(m)
				cfg.NumSMs = 4
				g, err := wir.NewGPU(cfg)
				if err != nil {
					b.Fatal(err)
				}
				bm, err := benchByAbbr("KM")
				if err != nil {
					b.Fatal(err)
				}
				w, err := bm.Setup(g)
				if err != nil {
					b.Fatal(err)
				}
				c, err := w.Run(g)
				if err != nil {
					b.Fatal(err)
				}
				st := g.Stats()
				instrs += st.Issued
				cycles += c
			}
			b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "warpinstrs/s")
			b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "simcycles/s")
		})
	}
}
