package wir_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	wir "github.com/wirsim/wir"
	"github.com/wirsim/wir/internal/bench"
	"github.com/wirsim/wir/internal/metrics"
)

// runAttributed runs the KM benchmark with the per-PC attribution collector
// attached, with or without the metrics instruments, and returns the
// collector, the final counters, the stall report and the cycle count.
func runAttributed(t *testing.T, instruments bool) (*wir.AttrCollector, wir.Stats, wir.StallReport, uint64) {
	t.Helper()
	bm, err := bench.ByAbbr("KM")
	if err != nil {
		t.Fatal(err)
	}
	cfg := wir.DefaultConfig(wir.RLPV)
	cfg.NumSMs = 2
	g, err := wir.NewGPU(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if instruments {
		g.SetInstruments(wir.NewInstruments(wir.NewMetricsRegistry()))
	}
	c := wir.NewAttrCollector()
	g.SetAttribution(c)
	w, err := bm.Setup(g)
	if err != nil {
		t.Fatal(err)
	}
	cycles, err := w.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return c, g.Stats(), g.StallReport(), cycles
}

// TestAttributionReconciles is the acceptance check for the attribution
// layer: per-PC sums must equal the matching aggregate counters exactly,
// with the instruments both attached and detached.
func TestAttributionReconciles(t *testing.T) {
	for _, mode := range []struct {
		name        string
		instruments bool
	}{
		{"instruments-on", true},
		{"instruments-off", false},
	} {
		t.Run(mode.name, func(t *testing.T) {
			c, st, sr, _ := runAttributed(t, mode.instruments)
			tot := c.Totals()
			checks := []struct {
				name       string
				perPC, agg uint64
			}{
				{"Issued", tot.Issued, st.Issued},
				{"Bypassed", tot.Bypassed, st.Bypassed},
				{"ReuseHits", tot.ReuseHits, st.ReuseHits},
				{"ReuseMisses", tot.ReuseMisses, st.ReuseMisses},
				{"VSBFalsePos", tot.VSBFalsePos, st.VSBFalsePos},
				{"DummyMovs", tot.DummyMovs, st.DummyMovs},
				{"BankRetries", tot.BankRetries, st.BankRetries},
			}
			for _, ck := range checks {
				if ck.perPC != ck.agg {
					t.Errorf("%s: per-PC sum %d != aggregate %d", ck.name, ck.perPC, ck.agg)
				}
			}

			// Stall blame (per-PC plus the unattributed bucket) must cover the
			// stall report reason for reason.
			stalls := c.StallTotals()
			for i, n := range sr.Stalls {
				if stalls[i] != n {
					t.Errorf("stall reason %s: attributed %d != report %d",
						metrics.StallReason(i), stalls[i], n)
				}
			}
			if tot.EnergyPJ <= 0 {
				t.Error("per-PC energy attribution is zero")
			}
			if len(c.Hotspots(5)) == 0 {
				t.Error("no hotspots recorded")
			}
		})
	}
}

// TestAttributionProfileRoundTrip writes the gzip'd pprof profile and parses
// it back, checking the sample sums against the collector totals.
func TestAttributionProfileRoundTrip(t *testing.T) {
	c, _, _, cycles := runAttributed(t, false)
	var buf bytes.Buffer
	if err := c.WriteProfile(&buf, cycles); err != nil {
		t.Fatal(err)
	}
	p, err := wir.ParsePprof(buf.Bytes())
	if err != nil {
		t.Fatalf("ParsePprof: %v", err)
	}
	if len(p.SampleType) != 3 {
		t.Fatalf("got %d sample types, want 3", len(p.SampleType))
	}
	if p.DurationNanos != int64(cycles)*1000 {
		t.Errorf("DurationNanos = %d, want %d", p.DurationNanos, int64(cycles)*1000)
	}
	var sumCycles, sumIssued uint64
	for _, s := range p.Samples {
		if len(s.Values) != 3 {
			t.Fatalf("sample has %d values, want 3", len(s.Values))
		}
		sumCycles += uint64(s.Values[0])
		sumIssued += uint64(s.Values[2])
		if len(s.LocationIDs) == 0 {
			t.Fatal("sample with no locations")
		}
	}
	tot := c.Totals()
	if sumCycles != tot.Cycles {
		t.Errorf("profile cycles %d != collector total %d", sumCycles, tot.Cycles)
	}
	if sumIssued != tot.Issued {
		t.Errorf("profile issued %d != collector total %d", sumIssued, tot.Issued)
	}
	// Every location must resolve to a function with the kernel disassembly
	// baked into its name.
	funcs := map[uint64]string{}
	for _, f := range p.Functions {
		funcs[f.ID] = f.Name
	}
	for _, l := range p.Locations {
		if len(l.Lines) == 0 {
			t.Fatal("location with no line info")
		}
		if _, ok := funcs[l.Lines[0].FunctionID]; !ok {
			t.Fatalf("location %d references unknown function %d", l.ID, l.Lines[0].FunctionID)
		}
	}
}

// TestAttributionProfileReadableByPprof shells out to `go tool pprof -raw`
// (the acceptance criterion) when a go toolchain is on PATH.
func TestAttributionProfileReadableByPprof(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	c, _, _, cycles := runAttributed(t, false)
	path := filepath.Join(t.TempDir(), "cpu.pb.gz")
	var buf bytes.Buffer
	if err := c.WriteProfile(&buf, cycles); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(goBin, "tool", "pprof", "-raw", path).CombinedOutput()
	if err != nil {
		t.Fatalf("go tool pprof -raw: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "cycles/cycles") {
		t.Fatalf("pprof -raw output missing sample type:\n%s", out)
	}
}
