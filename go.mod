module github.com/wirsim/wir

go 1.22
